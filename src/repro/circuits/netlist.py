"""Combinational gate-level netlists.

A :class:`Netlist` is a directed acyclic graph of named nets: primary inputs
plus one net per gate output.  The class owns the structural checks (no
undriven nets, no combinational loops) and caches the topological evaluation
order used by every simulator in the package.

Sequential (full-scan) circuits are handled the usual DFT way: after scan
insertion every flip-flop becomes a pseudo primary input / output, so the
circuit seen by ATPG is combinational and the test-cube width is
``#PIs + #flip-flops`` -- exactly the scan-cell count the rest of the library
works with.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple


class GateType(Enum):
    """Supported combinational gate functions."""

    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"

    @property
    def inverting(self) -> bool:
        return self in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT)


#: Gate types that accept exactly one input.
UNARY_GATES = {GateType.NOT, GateType.BUF}


@dataclass(frozen=True)
class Gate:
    """One gate: an output net computed from input nets."""

    output: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self):
        if not self.inputs:
            raise ValueError(f"gate {self.output!r} has no inputs")
        if self.gate_type in UNARY_GATES and len(self.inputs) != 1:
            raise ValueError(
                f"gate {self.output!r}: {self.gate_type.value} takes exactly one input"
            )
        if self.gate_type not in UNARY_GATES and len(self.inputs) < 2:
            raise ValueError(
                f"gate {self.output!r}: {self.gate_type.value} needs at least two inputs"
            )


class Netlist:
    """A combinational circuit."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        gates: Sequence[Gate],
    ):
        if not inputs:
            raise ValueError("a netlist needs at least one primary input")
        if not outputs:
            raise ValueError("a netlist needs at least one primary output")
        self._name = name
        self._inputs = list(dict.fromkeys(inputs))
        self._outputs = list(dict.fromkeys(outputs))
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.output in self._gates:
                raise ValueError(f"net {gate.output!r} is driven twice")
            if gate.output in self._inputs:
                raise ValueError(f"net {gate.output!r} is both an input and a gate output")
            self._gates[gate.output] = gate
        self._validate()
        self._topo_order = self._topological_order()
        self._gates_in_order = tuple(self._gates[net] for net in self._topo_order)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        driven = set(self._inputs) | set(self._gates)
        for gate in self._gates.values():
            for net in gate.inputs:
                if net not in driven:
                    raise ValueError(
                        f"gate {gate.output!r} reads undriven net {net!r}"
                    )
        for net in self._outputs:
            if net not in driven:
                raise ValueError(f"primary output {net!r} is undriven")

    def _topological_order(self) -> List[str]:
        """Gate outputs in evaluation order; raises on combinational loops."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

        def visit(net: str, stack: List[str]) -> None:
            if net in self._inputs or net not in self._gates:
                return
            mark = state.get(net, 0)
            if mark == 2:
                return
            if mark == 1:
                cycle = " -> ".join(stack + [net])
                raise ValueError(f"combinational loop detected: {cycle}")
            state[net] = 1
            for source in self._gates[net].inputs:
                visit(source, stack + [net])
            state[net] = 2
            order.append(net)

        for net in list(self._gates):
            visit(net, [])
        return order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._name

    @property
    def inputs(self) -> List[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        return list(self._outputs)

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    def gate(self, output_net: str) -> Gate:
        return self._gates[output_net]

    def gates(self) -> List[Gate]:
        """All gates in topological (evaluation) order."""
        return list(self._gates_in_order)

    def gate_sequence(self) -> Tuple[Gate, ...]:
        """The gates in evaluation order, without the defensive copy.

        The tuple is built once per netlist; simulators iterate it millions
        of times, so handing out the cached object matters.
        """
        return self._gates_in_order

    def nets(self) -> List[str]:
        """All nets: primary inputs first, then gate outputs in topo order."""
        return self._inputs + list(self._topo_order)

    def evaluation_order(self) -> List[str]:
        return list(self._topo_order)

    def fanout(self) -> Dict[str, List[str]]:
        """Mapping net -> gate outputs that read it."""
        out: Dict[str, List[str]] = {net: [] for net in self.nets()}
        for gate in self._gates.values():
            for source in gate.inputs:
                out[source].append(gate.output)
        return out

    def input_index(self, net: str) -> int:
        """Position of a primary input in the test-cube ordering."""
        return self._inputs.index(net)

    def depth(self) -> int:
        """Longest input-to-output path length in gates."""
        level: Dict[str, int] = {net: 0 for net in self._inputs}
        for net in self._topo_order:
            gate = self._gates[net]
            level[net] = 1 + max(level[src] for src in gate.inputs)
        return max((level[net] for net in self._outputs), default=0)

    def stats(self) -> Dict[str, int]:
        return {
            "inputs": self.num_inputs,
            "outputs": self.num_outputs,
            "gates": self.num_gates,
            "nets": len(self.nets()),
            "depth": self.depth(),
        }

    def fingerprint(self) -> str:
        """Content hash of the circuit structure (name excluded).

        Two netlists with the same inputs, outputs and gates -- regardless of
        how they were constructed or what they are called -- share a
        fingerprint, which is what lets compiled evaluators be reused across
        structurally identical instances.  Computed once and memoised.
        """
        if self._fingerprint is None:
            import hashlib

            parts = ["in:" + ",".join(self._inputs), "out:" + ",".join(self._outputs)]
            for gate in self._gates_in_order:
                parts.append(
                    f"{gate.output}={gate.gate_type.value}({','.join(gate.inputs)})"
                )
            digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
            self._fingerprint = digest[:32]
        return self._fingerprint

    def __repr__(self) -> str:
        return (
            f"Netlist({self._name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, gates={self.num_gates})"
        )
