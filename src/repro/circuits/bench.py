"""Reader / writer for the ISCAS ``.bench`` netlist format.

The format is the lingua franca of the test-generation literature (the ISCAS
'85/'89 benchmark circuits are distributed in it)::

    # comment
    INPUT(G1)
    INPUT(G2)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Only the combinational subset is supported (``DFF`` pseudo-gates are turned
into pseudo primary inputs/outputs, which is exactly the full-scan view the
rest of the library expects).
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.circuits.netlist import Gate, GateType, Netlist

_LINE_RE = re.compile(r"^\s*(\S+)\s*=\s*([A-Za-z]+)\s*\((.*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*(\S+?)\s*\)\s*$", re.IGNORECASE)

_GATE_NAMES: Dict[str, GateType] = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "inv": GateType.NOT,
    "buf": GateType.BUF,
    "buff": GateType.BUF,
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse a ``.bench`` description into a :class:`Netlist`.

    ``DFF`` gates are converted to the full-scan view: the flip-flop output
    becomes an extra primary input (pseudo PI) and its data input an extra
    primary output (pseudo PO).
    """
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    pseudo_inputs: List[str] = []
    pseudo_outputs: List[str] = []

    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1).upper(), io_match.group(2)
            if kind == "INPUT":
                inputs.append(net)
            else:
                outputs.append(net)
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise ValueError(f"cannot parse bench line: {raw_line!r}")
        output_net, type_name, operand_text = gate_match.groups()
        operands = [op.strip() for op in operand_text.split(",") if op.strip()]
        type_key = type_name.lower()
        if type_key == "dff":
            if len(operands) != 1:
                raise ValueError(f"DFF {output_net!r} must have exactly one input")
            pseudo_inputs.append(output_net)
            pseudo_outputs.append(operands[0])
            continue
        gate_type = _GATE_NAMES.get(type_key)
        if gate_type is None:
            raise ValueError(f"unknown gate type {type_name!r} in line {raw_line!r}")
        gates.append(Gate(output=output_net, gate_type=gate_type, inputs=tuple(operands)))

    return Netlist(
        name=name,
        inputs=inputs + pseudo_inputs,
        outputs=outputs + pseudo_outputs,
        gates=gates,
    )


def write_bench(netlist: Netlist) -> str:
    """Serialise a netlist back to ``.bench`` text."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    lines.append("")
    for gate in netlist.gates():
        operands = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.gate_type.value.upper()}({operands})")
    return "\n".join(lines) + "\n"
