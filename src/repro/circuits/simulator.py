"""Logic simulation: two-valued, three-valued and pattern-parallel.

Three entry points cover the needs of the package:

* :func:`simulate` -- plain 0/1 simulation of one input vector.
* :func:`simulate_ternary` -- 0/1/X simulation used by the PODEM test
  generator (unknowns propagate pessimistically, the standard controlling-
  value rules apply).
* :func:`simulate_parallel` -- bit-parallel simulation of up to the machine
  word width of patterns at once (each net value is a packed integer whose
  bit ``p`` is the value under pattern ``p``); this is what makes fault
  simulation of thousands of patterns practical in pure Python.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.netlist import Gate, GateType, Netlist

#: The unknown value of three-valued simulation.
X = None

#: Opcodes of the compiled pattern-parallel evaluation plan.
_OP_AND, _OP_OR, _OP_XOR, _OP_BUF = 0, 1, 2, 3

_OPCODE = {
    GateType.AND: _OP_AND,
    GateType.NAND: _OP_AND,
    GateType.OR: _OP_OR,
    GateType.NOR: _OP_OR,
    GateType.XOR: _OP_XOR,
    GateType.XNOR: _OP_XOR,
    GateType.BUF: _OP_BUF,
    GateType.NOT: _OP_BUF,
}

#: Plan rows: ``(output, opcode, inputs, inverting)`` in evaluation order.
PlanRow = Tuple[str, int, Tuple[str, ...], bool]

_PLAN_CACHE: "WeakKeyDictionary[Netlist, List[PlanRow]]" = WeakKeyDictionary()


def evaluation_plan(netlist: Netlist) -> List[PlanRow]:
    """The netlist's gates compiled to flat dispatch rows, cached.

    Resolving gate type to an opcode + inverting flag once per netlist (and
    not per gate visit) is what keeps the pattern-parallel inner loop to a
    few integer operations per gate.
    """
    plan = _PLAN_CACHE.get(netlist)
    if plan is None:
        plan = [
            (
                gate.output,
                _OPCODE[gate.gate_type],
                gate.inputs,
                gate.gate_type.inverting,
            )
            for gate in netlist.gate_sequence()
        ]
        _PLAN_CACHE[netlist] = plan
    return plan


def _eval_binary(gate: Gate, values: Dict[str, int]) -> int:
    operands = [values[net] for net in gate.inputs]
    gate_type = gate.gate_type
    if gate_type in (GateType.AND, GateType.NAND):
        result = all(operands)
    elif gate_type in (GateType.OR, GateType.NOR):
        result = any(operands)
    elif gate_type in (GateType.XOR, GateType.XNOR):
        result = sum(operands) % 2 == 1
    elif gate_type in (GateType.BUF, GateType.NOT):
        result = bool(operands[0])
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unsupported gate type {gate_type}")
    if gate_type.inverting:
        result = not result
    return int(result)


def simulate(netlist: Netlist, input_values: Dict[str, int]) -> Dict[str, int]:
    """Two-valued simulation of a single fully specified input vector."""
    values: Dict[str, int] = {}
    for net in netlist.inputs:
        if net not in input_values:
            raise ValueError(f"missing value for primary input {net!r}")
        bit = input_values[net]
        if bit not in (0, 1):
            raise ValueError(f"input {net!r} must be 0 or 1, got {bit!r}")
        values[net] = bit
    for gate in netlist.gates():
        values[gate.output] = _eval_binary(gate, values)
    return values


def _eval_ternary(gate: Gate, values: Dict[str, Optional[int]]) -> Optional[int]:
    operands = [values[net] for net in gate.inputs]
    gate_type = gate.gate_type
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in operands):
            result: Optional[int] = 0
        elif all(v == 1 for v in operands):
            result = 1
        else:
            result = X
    elif gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in operands):
            result = 1
        elif all(v == 0 for v in operands):
            result = 0
        else:
            result = X
    elif gate_type in (GateType.XOR, GateType.XNOR):
        if any(v is X for v in operands):
            result = X
        else:
            result = sum(operands) % 2
    else:  # BUF / NOT
        result = operands[0]
    if result is X:
        return X
    if gate_type.inverting:
        return 1 - result
    return result


def simulate_ternary(
    netlist: Netlist, input_values: Dict[str, Optional[int]]
) -> Dict[str, Optional[int]]:
    """Three-valued (0/1/X) simulation; missing inputs default to X."""
    values: Dict[str, Optional[int]] = {}
    for net in netlist.inputs:
        bit = input_values.get(net, X)
        if bit not in (0, 1, X):
            raise ValueError(f"input {net!r} must be 0, 1 or None, got {bit!r}")
        values[net] = bit
    for gate in netlist.gates():
        values[gate.output] = _eval_ternary(gate, values)
    return values


def _eval_parallel(gate: Gate, values: Dict[str, int], mask: int) -> int:
    operands = [values[net] for net in gate.inputs]
    gate_type = gate.gate_type
    if gate_type in (GateType.AND, GateType.NAND):
        result = mask
        for value in operands:
            result &= value
    elif gate_type in (GateType.OR, GateType.NOR):
        result = 0
        for value in operands:
            result |= value
    elif gate_type in (GateType.XOR, GateType.XNOR):
        result = 0
        for value in operands:
            result ^= value
    else:  # BUF / NOT
        result = operands[0]
    if gate_type.inverting:
        result = ~result & mask
    return result & mask


def simulate_parallel(
    netlist: Netlist, input_words: Dict[str, int], num_patterns: int
) -> Dict[str, int]:
    """Bit-parallel simulation of ``num_patterns`` patterns at once.

    ``input_words[net]`` packs the value of ``net`` under pattern ``p`` into
    bit ``p``.  The return value uses the same packing for every net of the
    circuit.
    """
    if num_patterns < 1:
        raise ValueError("num_patterns must be positive")
    mask = (1 << num_patterns) - 1
    values: Dict[str, int] = {}
    for net in netlist.inputs:
        if net not in input_words:
            raise ValueError(f"missing packed value for primary input {net!r}")
        values[net] = input_words[net] & mask
    for output, op, inputs, inverting in evaluation_plan(netlist):
        if op == _OP_AND:
            result = mask
            for net in inputs:
                result &= values[net]
        elif op == _OP_OR:
            result = 0
            for net in inputs:
                result |= values[net]
        elif op == _OP_XOR:
            result = 0
            for net in inputs:
                result ^= values[net]
        else:
            result = values[inputs[0]]
        values[output] = ~result & mask if inverting else result
    return values


def pack_patterns(
    netlist: Netlist, patterns: Sequence[Dict[str, int]]
) -> Dict[str, int]:
    """Pack a list of per-pattern input assignments into parallel words."""
    words = {net: 0 for net in netlist.inputs}
    for position, pattern in enumerate(patterns):
        for net in netlist.inputs:
            if pattern.get(net, 0):
                words[net] |= 1 << position
    return words
