"""Logic simulation: two-valued, three-valued and pattern-parallel.

Three entry points cover the needs of the package:

* :func:`simulate` -- plain 0/1 simulation of one input vector.
* :func:`simulate_ternary` -- 0/1/X simulation used by the PODEM test
  generator (unknowns propagate pessimistically, the standard controlling-
  value rules apply).
* :func:`simulate_parallel` -- bit-parallel simulation of up to the machine
  word width of patterns at once (each net value is a packed integer whose
  bit ``p`` is the value under pattern ``p``); this is what makes fault
  simulation of thousands of patterns practical in pure Python.

All three dispatch through the engine-backend registry
(:mod:`repro.circuits.backends`): ``engine=`` selects the implementation
family (``"reference"``, ``"packed"``, ``"events"`` or ``"compiled"``), the
default honours ``REPRO_ENGINE``, and every backend returns bit-identical
results -- only the speed differs.  The original dict-based three-valued
evaluator is kept as :func:`simulate_ternary_reference` -- the
golden-equivalence tests check every other backend against it on randomized
netlists, and ``engine="reference"`` selects it wherever bit-level
archaeology is needed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.circuits.backends import get_backend
from repro.circuits.netlist import Gate, GateType, Netlist
from repro.circuits.ternary import evaluation_plan, packed_plan

__all__ = [
    "X",
    "evaluation_plan",
    "pack_patterns",
    "simulate",
    "simulate_parallel",
    "simulate_ternary",
    "simulate_ternary_reference",
]

#: The unknown value of three-valued simulation.
X = None


def simulate(
    netlist: Netlist,
    input_values: Dict[str, int],
    engine: Optional[str] = None,
) -> Dict[str, int]:
    """Two-valued simulation of a single fully specified input vector."""
    plan = packed_plan(netlist)
    values = [0] * plan.num_nets
    nets = plan.nets
    for i in range(plan.num_inputs):
        net = nets[i]
        if net not in input_values:
            raise ValueError(f"missing value for primary input {net!r}")
        bit = input_values[net]
        if bit not in (0, 1):
            raise ValueError(f"input {net!r} must be 0 or 1, got {bit!r}")
        values[i] = bit
    get_backend(engine).eval_block(plan, values, 1)
    return dict(zip(nets, values))


def simulate_ternary(
    netlist: Netlist,
    input_values: Dict[str, Optional[int]],
    engine: Optional[str] = None,
) -> Dict[str, Optional[int]]:
    """Three-valued (0/1/X) simulation; missing inputs default to X."""
    return get_backend(engine).simulate_ternary(netlist, input_values)


def simulate_parallel(
    netlist: Netlist,
    input_words: Dict[str, int],
    num_patterns: int,
    engine: Optional[str] = None,
) -> Dict[str, int]:
    """Bit-parallel simulation of ``num_patterns`` patterns at once.

    ``input_words[net]`` packs the value of ``net`` under pattern ``p`` into
    bit ``p``.  The return value uses the same packing for every net of the
    circuit.
    """
    if num_patterns < 1:
        raise ValueError("num_patterns must be positive")
    mask = (1 << num_patterns) - 1
    plan = packed_plan(netlist)
    values = [0] * plan.num_nets
    nets = plan.nets
    for i in range(plan.num_inputs):
        net = nets[i]
        if net not in input_words:
            raise ValueError(f"missing packed value for primary input {net!r}")
        values[i] = input_words[net] & mask
    get_backend(engine).eval_block(plan, values, mask)
    return dict(zip(nets, values))


def pack_patterns(
    netlist: Netlist, patterns: Sequence[Dict[str, int]]
) -> Dict[str, int]:
    """Pack a list of per-pattern input assignments into parallel words."""
    words = {net: 0 for net in netlist.inputs}
    for position, pattern in enumerate(patterns):
        for net in netlist.inputs:
            if pattern.get(net, 0):
                words[net] |= 1 << position
    return words


# ----------------------------------------------------------------------
# Reference implementation (dict-based, pre-packed-core)
# ----------------------------------------------------------------------
def _eval_ternary(gate: Gate, values: Dict[str, Optional[int]]) -> Optional[int]:
    operands = [values[net] for net in gate.inputs]
    gate_type = gate.gate_type
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == 0 for v in operands):
            result: Optional[int] = 0
        elif all(v == 1 for v in operands):
            result = 1
        else:
            result = X
    elif gate_type in (GateType.OR, GateType.NOR):
        if any(v == 1 for v in operands):
            result = 1
        elif all(v == 0 for v in operands):
            result = 0
        else:
            result = X
    elif gate_type in (GateType.XOR, GateType.XNOR):
        if any(v is X for v in operands):
            result = X
        else:
            result = sum(operands) % 2
    else:  # BUF / NOT
        result = operands[0]
    if result is X:
        return X
    if gate_type.inverting:
        return 1 - result
    return result


def simulate_ternary_reference(
    netlist: Netlist, input_values: Dict[str, Optional[int]]
) -> Dict[str, Optional[int]]:
    """The pre-packed-core dict evaluator (golden reference for the engine)."""
    values: Dict[str, Optional[int]] = {}
    for net in netlist.inputs:
        bit = input_values.get(net, X)
        if bit not in (0, 1, X):
            raise ValueError(f"input {net!r} must be 0, 1 or None, got {bit!r}")
        values[net] = bit
    for gate in netlist.gates():
        values[gate.output] = _eval_ternary(gate, values)
    return values
