"""The ``compiled`` backend: per-netlist straight-line code generation.

Every interpreter backend pays per-gate dispatch in its inner loop: a tuple
unpack, an opcode branch and a reduce over the input tuple, per gate, per
evaluation.  This backend removes all of it by *generating* a Python
function for the netlist from its :class:`~repro.circuits.ternary.PackedPlan`
-- one local variable per net, each gate a single fused word expression with
the inversion folded in -- then ``compile()``/``exec()``-ing it once and
calling the resulting code object thereafter.  The emitted algebra is the
same 01X/binary algebra as :func:`~repro.circuits.ternary.eval_ternary` and
:func:`~repro.circuits.ternary.eval_binary`, specialised per gate, so the
results stay bit-identical (the conformance suite and the ``sim-compiled``/
``faultsim-compiled`` fuzz checks pin this).

Three functions are generated per netlist, each lazily:

* a **binary full pass** (``V`` in place) for good-block evaluation,
* a **binary fault diff** that seeds from the good block, overlays one
  stuck-at site (``if fi == <idx>`` per gate -- one cheap compare against
  the dozens of bytecodes the gate expression itself costs) and returns the
  packed output-difference word directly, without materialising the faulty
  state,
* a **ternary full pass** (``V``/``C`` in place, fault overlay supported)
  driving three-valued simulation and the PODEM full-pass dual machine.

Compiled evaluators are cached in a bounded LRU keyed by
:meth:`Netlist.fingerprint` (structure, not identity, so structurally equal
instances share one compilation), mirroring the substrate/ladder caches.
Everything is dependency-free stdlib codegen -- no numba, no Cython.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.circuits.backends.base import EngineBackend
from repro.circuits.netlist import Netlist
from repro.circuits.ternary import (
    OP_AND,
    OP_OR,
    OP_XOR,
    PackedPlan,
    packed_plan,
    seed_ternary_inputs,
    ternary_state_to_dict,
)
from repro.lru import LRUCache


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------
def _binary_expr(op: int, inputs, inverting: bool) -> str:
    """One gate as a single binary word expression over net locals."""
    terms = [f"v{net}" for net in inputs]
    if op == OP_AND:
        expr = " & ".join(terms)
    elif op == OP_OR:
        expr = " | ".join(terms)
    elif op == OP_XOR:
        expr = " ^ ".join(terms)
    else:  # BUF / NOT
        expr = terms[0]
    if inverting:
        # Operands are masked, so only the complement needs re-masking.
        return f"~({expr}) & mask"
    return expr


def gen_binary_full(plan: PackedPlan) -> str:
    """Source of ``binary_full(V, mask)``: in-place fault-free block eval."""
    lines = ["def binary_full(V, mask):"]
    for i in range(plan.num_inputs):
        lines.append(f"    v{i} = V[{i}]")
    for output, op, inputs, inverting in plan.rows:
        lines.append(f"    v{output} = {_binary_expr(op, inputs, inverting)}")
    for output, _op, _inputs, _inverting in plan.rows:
        lines.append(f"    V[{output}] = v{output}")
    return "\n".join(lines)


def gen_binary_diff(plan: PackedPlan) -> str:
    """Source of ``binary_diff(V, mask, fi, fw)``: packed detection word.

    ``V`` is the fault-free block (read only); the function re-evaluates
    the circuit with net ``fi`` stuck at the word ``fw`` and returns the
    OR of the output differences -- the fault simulator's detection word --
    without writing the faulty state anywhere.
    """
    lines = ["def binary_diff(V, mask, fi, fw):"]
    for i in range(plan.num_inputs):
        lines.append(f"    v{i} = fw if fi == {i} else V[{i}]")
    for output, op, inputs, inverting in plan.rows:
        lines.append(f"    v{output} = {_binary_expr(op, inputs, inverting)}")
        lines.append(f"    if fi == {output}: v{output} = fw")
    terms = " | ".join(f"(v{o} ^ V[{o}])" for o in plan.output_indices)
    lines.append(f"    return ({terms}) & mask")
    return "\n".join(lines)


def gen_ternary_full(plan: PackedPlan) -> str:
    """Source of ``ternary_full(V, C, mask, fi, fm, fv)``: in-place 01X eval.

    Emits the exact pessimistic 01X algebra of ``eval_ternary`` per gate
    shape, with the inversion folded into the value expression and the
    stuck-at overlay as one compare per gate (input-site overlays are the
    caller's job, as with every evaluator of the package).
    """
    lines = ["def ternary_full(V, C, mask, fi=-1, fm=0, fv=0):"]
    for i in range(plan.num_inputs):
        lines.append(f"    v{i} = V[{i}]")
        lines.append(f"    c{i} = C[{i}]")
    for output, op, inputs, inverting in plan.rows:
        v = [f"v{net}" for net in inputs]
        c = [f"c{net}" for net in inputs]
        out_v, out_c = f"v{output}", f"c{output}"
        if op == OP_AND:
            zero_any = " | ".join(f"({ci} & ~{vi})" for ci, vi in zip(c, v))
            one_all = " & ".join(v)
            lines.append(f"    {out_c} = ({zero_any} | ({one_all})) & mask")
            value = f"({one_all}) & {out_c}"
        elif op == OP_OR:
            one_any = " | ".join(v)
            zero_all = " & ".join(f"({ci} & ~{vi})" for ci, vi in zip(c, v))
            lines.append(f"    {out_c} = (({one_any}) | ({zero_all})) & mask")
            value = f"({one_any}) & {out_c}"
        elif op == OP_XOR:
            lines.append(f"    {out_c} = " + " & ".join(c))
            value = "(" + " ^ ".join(v) + f") & {out_c}"
        else:  # BUF / NOT
            lines.append(f"    {out_c} = {c[0]}")
            value = v[0]
        if inverting:
            value = f"~({value}) & {out_c}"
        lines.append(f"    {out_v} = {value}")
        lines.append(
            f"    if fi == {output}: {out_c} |= fm; "
            f"{out_v} = ({out_v} & ~fm) | (fv & fm)"
        )
    for output, _op, _inputs, _inverting in plan.rows:
        lines.append(f"    V[{output}] = v{output}")
        lines.append(f"    C[{output}] = c{output}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Codegen verification hook
# ----------------------------------------------------------------------
#: Process-wide override for codegen verification; ``None`` defers to the
#: ``REPRO_VERIFY_CODEGEN`` environment variable (how the fuzz-smoke CI
#: job turns it on without touching call sites).
_VERIFY_CODEGEN: Optional[bool] = None


def set_codegen_verify(enabled: Optional[bool]) -> None:
    """Force codegen verification on/off process-wide (``None`` = env)."""
    global _VERIFY_CODEGEN
    _VERIFY_CODEGEN = enabled


def codegen_verify_enabled() -> bool:
    if _VERIFY_CODEGEN is not None:
        return _VERIFY_CODEGEN
    return os.environ.get("REPRO_VERIFY_CODEGEN", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class CompiledEvaluator:
    """The compiled evaluation functions of one netlist, built lazily.

    With ``verify`` enabled (explicitly, via :func:`set_codegen_verify` or
    ``REPRO_VERIFY_CODEGEN``), every generated function is AST-verified by
    :func:`repro.staticcheck.ir.verify_generated_source` before it is
    ``exec()``-ed -- single-assignment locals, def-before-use ordering,
    template-scope hygiene, output-word completeness.  The cost lands on
    the build (cache miss) only; the returned callables are unchanged.
    """

    __slots__ = (
        "plan", "verify", "_binary_full", "_binary_diff", "_ternary_full",
    )

    def __init__(self, netlist: Netlist, verify: Optional[bool] = None):
        self.plan = packed_plan(netlist)
        self.verify = verify
        self._binary_full: Optional[Callable] = None
        self._binary_diff: Optional[Callable] = None
        self._ternary_full: Optional[Callable] = None

    def _build(self, source: str, name: str) -> Callable:
        verify = self.verify
        if verify is None:
            verify = codegen_verify_enabled()
        if verify:
            # Local import: staticcheck sits above the circuits layer.
            from repro.staticcheck.ir import (
                IrVerificationError,
                verify_generated_source,
            )

            problems = verify_generated_source(source, self.plan, name)
            if problems:
                raise IrVerificationError(
                    f"generated {name} of {self.plan.netlist.name!r}",
                    problems,
                )
        namespace: Dict[str, Callable] = {}
        code = compile(
            source, f"<compiled-eval:{self.plan.netlist.name}:{name}>", "exec"
        )
        exec(code, namespace)
        return namespace[name]

    def binary_full(self) -> Callable:
        """``binary_full(V, mask)`` -- in-place fault-free block evaluation."""
        fn = self._binary_full
        if fn is None:
            fn = self._build(gen_binary_full(self.plan), "binary_full")
            self._binary_full = fn
        return fn

    def binary_diff(self) -> Callable:
        """``binary_diff(V, mask, fi, fw)`` -- one fault's detection word."""
        fn = self._binary_diff
        if fn is None:
            fn = self._build(gen_binary_diff(self.plan), "binary_diff")
            self._binary_diff = fn
        return fn

    def ternary_full(self) -> Callable:
        """``ternary_full(V, C, mask, fi, fm, fv)`` -- in-place 01X evaluation."""
        fn = self._ternary_full
        if fn is None:
            fn = self._build(gen_ternary_full(self.plan), "ternary_full")
            self._ternary_full = fn
        return fn


# ----------------------------------------------------------------------
# Bounded LRU, keyed by structural fingerprint
# ----------------------------------------------------------------------
#: Maximum number of netlists with live compiled evaluators.  A campaign
#: touches a handful of circuits; 16 keeps every realistic working set
#: resident while bounding the retained code objects.
EVALUATOR_CACHE_SIZE = 16

_EVALUATOR_CACHE: LRUCache = LRUCache(EVALUATOR_CACHE_SIZE)


def compiled_evaluator(
    netlist: Netlist, verify: Optional[bool] = None
) -> CompiledEvaluator:
    """The netlist's :class:`CompiledEvaluator`, LRU-cached by fingerprint.

    Keyed by :meth:`Netlist.fingerprint`, so structurally identical
    instances (same gates, any name, any identity) share one compilation.
    ``verify`` (tri-state, see :class:`CompiledEvaluator`) applies to any
    function the returned evaluator has not built yet.
    """
    key = netlist.fingerprint()
    evaluator = _EVALUATOR_CACHE.get(key)
    if evaluator is None:
        evaluator = CompiledEvaluator(netlist, verify=verify)
        _EVALUATOR_CACHE.put(key, evaluator)
    elif verify is not None:
        evaluator.verify = verify
    return evaluator


def evaluator_cache_stats() -> Dict[str, int]:
    """Lifetime hit/miss/eviction counters plus the current cache size."""
    return _EVALUATOR_CACHE.stats()


def clear_evaluator_cache() -> None:
    """Drop every cached evaluator and reset the counters (test hook)."""
    _EVALUATOR_CACHE.clear()
    _EVALUATOR_CACHE.reset_stats()


# ----------------------------------------------------------------------
# Backend
# ----------------------------------------------------------------------
class CompiledBackend(EngineBackend):
    """Codegen evaluators everywhere an evaluation is block-shaped.

    PODEM runs the full-pass decision loop on the compiled ternary
    function; fault simulation screens activations and calls the compiled
    diff function per fault (the good block is flattened to the plan's net
    order once per block, amortised over every fault screened against it).
    """

    name = "compiled"
    description = "per-netlist generated straight-line evaluators (codegen)"
    podem_mode = "compiled"
    fills = "batched"
    batched_decompressor = True

    def simulate_ternary(
        self, netlist: Netlist, input_values: Dict[str, Optional[int]]
    ) -> Dict[str, Optional[int]]:
        evaluator = compiled_evaluator(netlist)
        plan = evaluator.plan
        values, cares = seed_ternary_inputs(plan, input_values)
        evaluator.ternary_full()(values, cares, 1)
        return ternary_state_to_dict(plan, values, cares)

    def eval_block(self, plan: PackedPlan, values: List[int], mask: int) -> None:
        compiled_evaluator(plan.netlist).binary_full()(values, mask)

    def block_detector(self, simulator, good: Dict[str, int], mask: int):
        evaluator = compiled_evaluator(simulator.netlist)
        plan = evaluator.plan
        values = [good[net] for net in plan.nets]
        diff_fn = evaluator.binary_diff()
        index = plan.index

        def detect(fault) -> int:
            stuck = mask if fault.stuck_value else 0
            simulator._screen_calls += 1
            if values[index[fault.net]] == stuck:
                # Same activation screen as the cone path: the site never
                # deviates from the stuck value anywhere in the block.
                simulator._screen_hits += 1
                return 0
            return diff_fn(values, mask, index[fault.net], stuck)

        return detect
