"""Pluggable engine backends (see :mod:`repro.circuits.backends.base`).

Importing the package registers the four built-in backends:
``reference``, ``packed``, ``events`` (the default) and ``compiled``.
"""

from repro.circuits.backends.base import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    EngineBackend,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_engine,
)
from repro.circuits.backends.builtin import (
    EventsBackend,
    PackedBackend,
    ReferenceBackend,
)
from repro.circuits.backends.compiled import (
    EVALUATOR_CACHE_SIZE,
    CompiledBackend,
    CompiledEvaluator,
    clear_evaluator_cache,
    compiled_evaluator,
    evaluator_cache_stats,
)

register_backend(ReferenceBackend())
register_backend(PackedBackend())
register_backend(EventsBackend())
register_backend(CompiledBackend())

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_ENV_VAR",
    "EVALUATOR_CACHE_SIZE",
    "CompiledBackend",
    "CompiledEvaluator",
    "EngineBackend",
    "EventsBackend",
    "PackedBackend",
    "ReferenceBackend",
    "backend_names",
    "clear_evaluator_cache",
    "compiled_evaluator",
    "default_backend_name",
    "evaluator_cache_stats",
    "get_backend",
    "register_backend",
    "resolve_engine",
]
