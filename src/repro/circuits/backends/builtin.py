"""The three interpreter backends: ``reference``, ``packed`` and ``events``.

All three run on the shared packed two-word core for block evaluation (the
dict evaluator never had a pattern-parallel variant), and differ in the
ternary evaluator, the per-fault propagation strategy and the PODEM engine
they select:

* ``reference`` -- the pre-packed-core behaviour: dict-based ternary
  simulation and PODEM, dense full-circuit re-evaluation per fault,
  per-pattern fill drops and the clock-by-clock decompressor replay.  Slow
  by design; this is the golden path everything else is tested against.
* ``packed`` -- the packed full-pass engines: two-word ternary evaluation
  and the dual-machine PODEM full pass, still dense per-fault propagation.
* ``events`` -- the default: incremental event-driven PODEM, fanout-cone
  fault propagation with activation screening, batched fills and the
  segment-batched decompressor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.backends.base import EngineBackend
from repro.circuits.netlist import Netlist
from repro.circuits.ternary import (
    PackedPlan,
    eval_binary,
    eval_ternary,
    packed_plan,
    seed_ternary_inputs,
    ternary_state_to_dict,
)


class _PackedCoreBackend(EngineBackend):
    """Shared primitives of every interpreter backend (the packed core)."""

    def simulate_ternary(
        self, netlist: Netlist, input_values: Dict[str, Optional[int]]
    ) -> Dict[str, Optional[int]]:
        plan = packed_plan(netlist)
        values, cares = seed_ternary_inputs(plan, input_values)
        eval_ternary(plan, values, cares, 1)
        return ternary_state_to_dict(plan, values, cares)

    def eval_block(self, plan: PackedPlan, values: List[int], mask: int) -> None:
        eval_binary(plan, values, mask)

    def block_detector(self, simulator, good: Dict[str, int], mask: int):
        return lambda fault: simulator._dense_diff(good, mask, fault)


class ReferenceBackend(_PackedCoreBackend):
    """Dict evaluators and dense propagation; the frozen golden path."""

    name = "reference"
    description = "dict-based ternary/PODEM reference, dense fault propagation"
    podem_mode = "reference"
    fills = "per-pattern"
    batched_decompressor = False

    def simulate_ternary(
        self, netlist: Netlist, input_values: Dict[str, Optional[int]]
    ) -> Dict[str, Optional[int]]:
        # Function-level import: the simulator module dispatches through
        # this registry, so the reference evaluator cannot be imported at
        # module load without a cycle.
        from repro.circuits.simulator import simulate_ternary_reference

        return simulate_ternary_reference(netlist, input_values)


class PackedBackend(_PackedCoreBackend):
    """Packed full-pass engines with dense per-fault propagation."""

    name = "packed"
    description = "packed two-word full-pass engines, dense fault propagation"
    podem_mode = "packed"
    fills = "per-pattern"


class EventsBackend(_PackedCoreBackend):
    """Incremental event engines and cone propagation (the default)."""

    name = "events"
    description = "event-driven PODEM, fanout-cone fault propagation, batched fills"
    podem_mode = "events"
    fills = "batched"

    def block_detector(self, simulator, good: Dict[str, int], mask: int):
        return lambda fault: simulator._cone_diff(good, mask, fault)
