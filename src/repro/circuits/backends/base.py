"""Engine-backend registry: named, interchangeable simulation engines.

The package grew four ways to evaluate the same netlist -- the original
dict evaluator, the packed two-word core, the incremental event engine and
the per-netlist compiled evaluators -- and they used to be selected through
ad-hoc boolean flags (``use_packed``/``use_events``/``use_cones``/
``batched``) scattered over every constructor.  This module replaces the
flag combinatorics with one registry: an :class:`EngineBackend` bundles a
coherent family of implementations (ternary simulation, pattern-parallel
block evaluation, per-fault propagation, a PODEM dispatch mode and the
batching defaults that go with them) under a single name, and every entry
point takes ``engine="reference" | "packed" | "events" | "compiled"``.

All registered backends are bit-identical by contract: the parametrized
conformance suite (``tests/test_backends.py``) and the differential fuzz
checks run every backend against the dict reference on randomized circuits,
so a backend only ever changes *how fast* an answer is produced, never the
answer.  That is also why ``engine=`` does not participate in result cache
keys unless explicitly pinned.

The default backend is ``events``; the ``REPRO_ENGINE`` environment
variable overrides it process-wide (CI uses ``REPRO_ENGINE=reference`` to
keep the slow golden path green).  The legacy boolean flags still work as
thin shims: :func:`resolve_engine` maps them to a backend name and emits
one :class:`DeprecationWarning` per flag passed.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuits.netlist import Netlist
from repro.circuits.ternary import PackedPlan

#: Fallback backend when neither ``engine=`` nor the environment selects one.
DEFAULT_ENGINE = "events"

#: Environment variable overriding the default backend process-wide.
ENGINE_ENV_VAR = "REPRO_ENGINE"


class EngineBackend:
    """One named family of simulation/ATPG/fault-sim implementations.

    Subclasses provide the three evaluation primitives every consumer
    needs -- a ternary single-vector simulation, an in-place binary block
    evaluation and a per-fault block detector -- plus the dispatch hints
    (:attr:`podem_mode`, :attr:`fills`, :attr:`batched_decompressor`) that
    the higher layers read instead of carrying their own engine flags.
    """

    #: Registry key and the value of every ``engine=`` parameter.
    name: str = ""
    #: One-line summary used by docs and error messages.
    description: str = ""
    #: Decision-loop engine of :class:`repro.circuits.atpg.PodemAtpg`:
    #: ``"reference"`` (dict), ``"packed"`` (full-pass), ``"events"``
    #: (incremental) or ``"compiled"`` (full-pass on codegen).
    podem_mode: str = "packed"
    #: Default fill handling of ``PodemAtpg.run``: ``"batched"`` packs
    #: pending random fills into one fault-sim block, ``"per-pattern"``
    #: keeps the original drop-per-fill reference behaviour.
    fills: str = "batched"
    #: Default decompressor replay mode (segment-batched vs clock-by-clock).
    batched_decompressor: bool = True

    # ------------------------------------------------------------------
    # Evaluation primitives
    # ------------------------------------------------------------------
    def simulate_ternary(
        self, netlist: Netlist, input_values: Dict[str, Optional[int]]
    ) -> Dict[str, Optional[int]]:
        """Three-valued (0/1/X) simulation of one partial input assignment."""
        raise NotImplementedError

    def eval_block(self, plan: PackedPlan, values: List[int], mask: int) -> None:
        """In-place binary pattern-parallel evaluation over a seeded state list.

        Same contract as :func:`repro.circuits.ternary.eval_binary`:
        ``values[0:num_inputs]`` holds the packed (pre-masked) input words,
        gate entries are written in place.
        """
        raise NotImplementedError

    def block_detector(
        self, simulator, good: Dict[str, int], mask: int
    ) -> Callable:
        """A per-fault detector bound to one fault-free block.

        Returns ``detect(fault) -> int``: the packed detection word of one
        stuck-at fault against the block (``good`` maps every net to its
        fault-free word).  Binding per block lets a backend amortise any
        per-block preparation over all faults it screens.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EngineBackend {self.name!r}>"


_REGISTRY: "Dict[str, EngineBackend]" = {}


def register_backend(backend: EngineBackend, replace: bool = False) -> EngineBackend:
    """Add a backend to the registry under ``backend.name``."""
    if not backend.name:
        raise ValueError("backend needs a non-empty name")
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def backend_names() -> Tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_REGISTRY)


def default_backend_name() -> str:
    """The process-wide default: ``REPRO_ENGINE`` when set, else ``events``.

    Read on every call (not cached) so test fixtures can monkeypatch the
    environment; an unknown name in the variable raises the same error an
    unknown ``engine=`` does, listing the registered backends.
    """
    name = os.environ.get(ENGINE_ENV_VAR)
    if not name:
        return DEFAULT_ENGINE
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r} in ${ENGINE_ENV_VAR}; "
            f"registered backends: {', '.join(_REGISTRY)}"
        )
    return name


def get_backend(engine: Optional[str] = None) -> EngineBackend:
    """The backend registered under ``engine`` (default backend when None)."""
    if engine is None:
        engine = default_backend_name()
    backend = _REGISTRY.get(engine)
    if backend is None:
        raise ValueError(
            f"unknown engine {engine!r}; "
            f"registered backends: {', '.join(_REGISTRY)}"
        )
    return backend


#: Legacy boolean flags and the backend each selects when passed as False.
#: ``True`` was always the optimised default, so a True value keeps the
#: resolution at the caller's default engine.
_LEGACY_FALSE_ENGINE = {
    "use_packed": "reference",
    "use_events": "packed",
    "use_cones": "packed",
    "batched": "reference",
}

#: Resolution strength: when several legacy flags are passed, the slowest
#: (most conservative) engine they imply wins -- ``use_packed=False`` beats
#: ``use_events=False``, matching the old flag precedence.
_LEGACY_RANK = {"reference": 0, "packed": 1, "events": 2, "compiled": 3}


def resolve_engine(
    engine: Optional[str] = None,
    default: Optional[str] = None,
    stacklevel: int = 3,
    **legacy_flags,
) -> str:
    """Resolve an ``engine=`` value plus legacy boolean flags to a backend name.

    ``engine`` wins when given (unknown names raise, listing the registered
    backends).  Otherwise any legacy flag explicitly passed (not None) is
    mapped -- ``use_packed=False`` -> ``"reference"``, ``use_events=False`` /
    ``use_cones=False`` -> ``"packed"``, ``batched=False`` ->
    ``"reference"`` -- with one :class:`DeprecationWarning` per flag.  When
    nothing selects a backend the ``default`` (or the process default) is
    returned.
    """
    passed = {
        flag: value for flag, value in legacy_flags.items() if value is not None
    }
    for flag in passed:
        if flag not in _LEGACY_FALSE_ENGINE:
            raise TypeError(f"unknown legacy engine flag {flag!r}")
    if engine is not None:
        get_backend(engine)  # validate; raises on unknown names
        resolved = engine
    else:
        resolved = default if default is not None else default_backend_name()
        rank = _LEGACY_RANK.get(resolved, len(_LEGACY_RANK))
        for flag, value in passed.items():
            if value:
                continue
            implied = _LEGACY_FALSE_ENGINE[flag]
            if _LEGACY_RANK[implied] < rank:
                resolved, rank = implied, _LEGACY_RANK[implied]
    for flag, value in passed.items():
        warnings.warn(
            f"{flag}={value!r} is deprecated; "
            f"select the backend with engine={resolved!r} instead",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    return resolved
