"""Packed two-word ternary (01X) simulation core.

Every simulator of the package -- plain 0/1 simulation, three-valued PODEM
simulation and pattern-parallel fault simulation -- evaluates the same
topologically ordered gate plan.  This module is the one engine behind all
of them.

Representation
--------------
A ternary signal is packed into **two words per net**: a *value* word and a
*care* word.  Bit ``p`` of the care word is 0 when the signal is ``X`` under
pattern ``p`` and 1 when it carries the known value stored in bit ``p`` of
the value word (value bits are always masked to 0 where the care bit is 0,
so equal states compare equal).  Words are plain Python integers, so the
pattern width is arbitrary: PODEM packs the good and the faulty machine into
a 2-bit word, fault simulation packs hundreds of patterns, and the uint64
blocks of the numpy embedding-matching layer are just this encoding sliced
into 64-bit words (see :meth:`repro.testdata.cube.TestCube.packed_words`).

Two-valued simulation is the ``care == mask`` special case; its inner loop
drops the care accumulator entirely, which keeps the binary fault-simulation
kernel at the exact operation count it had before this core existed.

Gate rules (the standard pessimistic 01X algebra)
-------------------------------------------------
* AND: known-0 when any input is known-0, known-1 when all inputs are
  known-1, else X -- ``care = zero_any | one_all``, ``value = one_all``.
* OR: dual of AND -- ``care = one_any | zero_all``, ``value = one_any``.
* XOR: known only when every input is known -- ``care = AND(cares)``,
  ``value = XOR(values) & care``.
* BUF: pass-through.  Inverting types flip ``value`` inside ``care``.

Fault overlays
--------------
Single stuck-at faults are injected as an *overlay*: after a net's gate is
evaluated (or before the plan runs, for primary-input sites), the net is
forced to ``care |= force_mask`` / ``value = stuck`` on the overlay
patterns only.  The same overlay drives PODEM's faulty machine (bit 1 of
its 2-bit word) and the dense reference path of the fault simulator.

The compiled plan (:func:`packed_plan`) indexes nets by position --
primary inputs first, then gate outputs in evaluation order -- so the hot
loops run on flat lists instead of name dictionaries.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.netlist import GateType, Netlist

#: Opcodes of the compiled evaluation plans (shared by every simulator).
OP_AND, OP_OR, OP_XOR, OP_BUF = 0, 1, 2, 3

_OPCODE = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_AND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_OR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XOR,
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_BUF,
}

#: Name-based plan rows: ``(output, opcode, inputs, inverting)`` in
#: evaluation order (the fault simulator's fanout cones slice these).
PlanRow = Tuple[str, int, Tuple[str, ...], bool]

_PLAN_CACHE: "WeakKeyDictionary[Netlist, List[PlanRow]]" = WeakKeyDictionary()


def evaluation_plan(netlist: Netlist) -> List[PlanRow]:
    """The netlist's gates compiled to flat dispatch rows, cached.

    Resolving gate type to an opcode + inverting flag once per netlist (and
    not per gate visit) is what keeps every packed inner loop to a few
    integer operations per gate.
    """
    plan = _PLAN_CACHE.get(netlist)
    if plan is None:
        plan = [
            (
                gate.output,
                _OPCODE[gate.gate_type],
                gate.inputs,
                gate.gate_type.inverting,
            )
            for gate in netlist.gate_sequence()
        ]
        _PLAN_CACHE[netlist] = plan
    return plan


#: Plan rows with integer net indices: ``(output, opcode, inputs, inverting)``.
IndexedRow = Tuple[int, int, Tuple[int, ...], bool]


class PackedPlan:
    """The compiled, integer-indexed evaluation plan of one netlist.

    Net index order is :meth:`Netlist.nets`: primary inputs first (in input
    order), then gate outputs in topological order -- so ``rows`` can be
    evaluated front to back over one flat state list.
    """

    __slots__ = (
        "netlist",
        "nets",
        "index",
        "rows",
        "num_inputs",
        "num_nets",
        "output_indices",
        "fanout",
    )

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.nets: List[str] = netlist.nets()
        self.index: Dict[str, int] = {net: i for i, net in enumerate(self.nets)}
        self.num_inputs = netlist.num_inputs
        self.num_nets = len(self.nets)
        index = self.index
        self.rows: List[IndexedRow] = [
            (index[output], op, tuple(index[net] for net in inputs), inverting)
            for output, op, inputs, inverting in evaluation_plan(netlist)
        ]
        self.output_indices: Tuple[int, ...] = tuple(
            index[net] for net in netlist.outputs
        )
        fanout = netlist.fanout()
        self.fanout: List[Tuple[int, ...]] = [
            tuple(index[reader] for reader in fanout[net]) for net in self.nets
        ]


_PACKED_PLAN_CACHE: "WeakKeyDictionary[Netlist, PackedPlan]" = WeakKeyDictionary()


def packed_plan(netlist: Netlist) -> PackedPlan:
    """The netlist's :class:`PackedPlan`, built once and cached."""
    plan = _PACKED_PLAN_CACHE.get(netlist)
    if plan is None:
        plan = PackedPlan(netlist)
        _PACKED_PLAN_CACHE[netlist] = plan
    return plan


# ----------------------------------------------------------------------
# Engine cores
# ----------------------------------------------------------------------
def eval_binary(
    plan: PackedPlan,
    values: List[int],
    mask: int,
    force_index: int = -1,
    force_word: int = 0,
) -> None:
    """Two-valued pattern-parallel evaluation over a pre-seeded state list.

    ``values[0:num_inputs]`` must hold the packed primary-input words; gate
    entries are written in place.  ``force_index >= 0`` overlays a stuck-at
    fault: that net is forced to ``force_word`` on every pattern (after its
    gate is evaluated; input sites must be forced by the caller before the
    call, since inputs have no plan row).
    """
    for output, op, inputs, inverting in plan.rows:
        if op == OP_AND:
            result = mask
            for net in inputs:
                result &= values[net]
        elif op == OP_OR:
            result = 0
            for net in inputs:
                result |= values[net]
        elif op == OP_XOR:
            result = 0
            for net in inputs:
                result ^= values[net]
        else:
            result = values[inputs[0]]
        if inverting:
            result = ~result & mask
        values[output] = force_word if output == force_index else result


def eval_ternary(
    plan: PackedPlan,
    values: List[int],
    cares: List[int],
    mask: int,
    force_index: int = -1,
    force_mask: int = 0,
    force_value: int = 0,
) -> None:
    """Three-valued (01X) evaluation over pre-seeded ``(value, care)`` lists.

    Input entries ``[0:num_inputs]`` must be seeded (care bit 0 = X); gate
    entries are written in place.  Value bits are kept masked to the care
    bits, so states are canonical and directly comparable.

    A fault overlay ``(force_index, force_mask, force_value)`` forces the
    net at ``force_index`` to the known value ``force_value`` on the
    patterns selected by ``force_mask`` -- the PODEM faulty machine passes
    ``force_mask = 0b10`` to poison only its own bit of the shared word.
    Input-site overlays must again be applied by the caller before the call.
    """
    for output, op, inputs, inverting in plan.rows:
        if op == OP_AND:
            # known-0 when any input is known-0; known-1 when all are known-1
            zero_any = 0
            one_all = mask
            for net in inputs:
                care = cares[net]
                value = values[net]
                zero_any |= care & ~value
                one_all &= value
            care = (zero_any | one_all) & mask
            value = one_all & care
        elif op == OP_OR:
            one_any = 0
            zero_all = mask
            for net in inputs:
                care = cares[net]
                value = values[net]
                one_any |= value
                zero_all &= care & ~value
            care = (one_any | zero_all) & mask
            value = one_any & care
        elif op == OP_XOR:
            care = mask
            value = 0
            for net in inputs:
                care &= cares[net]
                value ^= values[net]
            value &= care
        else:
            care = cares[inputs[0]]
            value = values[inputs[0]]
        if inverting:
            value = ~value & care
        if output == force_index:
            care |= force_mask
            value = (value & ~force_mask) | (force_value & force_mask)
        cares[output] = care
        values[output] = value


# ----------------------------------------------------------------------
# Packing helpers
# ----------------------------------------------------------------------
def seed_ternary_inputs(
    plan: PackedPlan,
    input_values: Dict[str, Optional[int]],
    patterns: int = 1,
) -> Tuple[List[int], List[int]]:
    """Fresh ``(values, cares)`` state lists seeded from a 0/1/X input dict.

    Missing inputs default to X.  Each specified input is replicated across
    all ``patterns`` bits (the PODEM dual machine then overlays its faulty
    pattern on top).
    """
    full = (1 << patterns) - 1
    values = [0] * plan.num_nets
    cares = [0] * plan.num_nets
    nets = plan.nets
    for i in range(plan.num_inputs):
        bit = input_values.get(nets[i], None)
        if bit is None:
            continue
        if bit not in (0, 1):
            raise ValueError(
                f"input {nets[i]!r} must be 0, 1 or None, got {bit!r}"
            )
        cares[i] = full
        if bit:
            values[i] = full
    return values, cares


def ternary_state_to_dict(
    plan: PackedPlan, values: Sequence[int], cares: Sequence[int], pattern: int = 0
) -> Dict[str, Optional[int]]:
    """One pattern of a packed ternary state as the classic 0/1/None dict."""
    bit = 1 << pattern
    out: Dict[str, Optional[int]] = {}
    for i, net in enumerate(plan.nets):
        if cares[i] & bit:
            out[net] = 1 if values[i] & bit else 0
        else:
            out[net] = None
    return out
