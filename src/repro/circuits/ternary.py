"""Packed two-word ternary (01X) simulation core.

Every simulator of the package -- plain 0/1 simulation, three-valued PODEM
simulation and pattern-parallel fault simulation -- evaluates the same
topologically ordered gate plan.  This module is the one engine behind all
of them.

Representation
--------------
A ternary signal is packed into **two words per net**: a *value* word and a
*care* word.  Bit ``p`` of the care word is 0 when the signal is ``X`` under
pattern ``p`` and 1 when it carries the known value stored in bit ``p`` of
the value word (value bits are always masked to 0 where the care bit is 0,
so equal states compare equal).  Words are plain Python integers, so the
pattern width is arbitrary: PODEM packs the good and the faulty machine into
a 2-bit word, fault simulation packs hundreds of patterns, and the uint64
blocks of the numpy embedding-matching layer are just this encoding sliced
into 64-bit words (see :meth:`repro.testdata.cube.TestCube.packed_words`).

Two-valued simulation is the ``care == mask`` special case; its inner loop
drops the care accumulator entirely, which keeps the binary fault-simulation
kernel at the exact operation count it had before this core existed.

Gate rules (the standard pessimistic 01X algebra)
-------------------------------------------------
* AND: known-0 when any input is known-0, known-1 when all inputs are
  known-1, else X -- ``care = zero_any | one_all``, ``value = one_all``.
* OR: dual of AND -- ``care = one_any | zero_all``, ``value = one_any``.
* XOR: known only when every input is known -- ``care = AND(cares)``,
  ``value = XOR(values) & care``.
* BUF: pass-through.  Inverting types flip ``value`` inside ``care``.

Fault overlays
--------------
Single stuck-at faults are injected as an *overlay*: after a net's gate is
evaluated (or before the plan runs, for primary-input sites), the net is
forced to ``care |= force_mask`` / ``value = stuck`` on the overlay
patterns only.  The same overlay drives PODEM's faulty machine (bit 1 of
its 2-bit word) and the dense reference path of the fault simulator.

The compiled plan (:func:`packed_plan`) indexes nets by position --
primary inputs first, then gate outputs in evaluation order -- so the hot
loops run on flat lists instead of name dictionaries.

Besides the two batch evaluators (:func:`eval_binary`, :func:`eval_ternary`)
the module provides :class:`TernaryEventEngine`: a persistent state that
updates incrementally when one primary input changes, re-evaluating only the
dirty fanout cone through a levelized event queue and recording every
overwrite in an undo log so a caller (PODEM's backtracking search) can
rewind in O(changed cone).
"""

from __future__ import annotations

import heapq
from weakref import WeakKeyDictionary
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.netlist import GateType, Netlist

#: Opcodes of the compiled evaluation plans (shared by every simulator).
OP_AND, OP_OR, OP_XOR, OP_BUF = 0, 1, 2, 3

_OPCODE = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_AND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_OR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XOR,
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_BUF,
}

#: Name-based plan rows: ``(output, opcode, inputs, inverting)`` in
#: evaluation order (the fault simulator's fanout cones slice these).
PlanRow = Tuple[str, int, Tuple[str, ...], bool]

_PLAN_CACHE: "WeakKeyDictionary[Netlist, List[PlanRow]]" = WeakKeyDictionary()


def evaluation_plan(netlist: Netlist) -> List[PlanRow]:
    """The netlist's gates compiled to flat dispatch rows, cached.

    Resolving gate type to an opcode + inverting flag once per netlist (and
    not per gate visit) is what keeps every packed inner loop to a few
    integer operations per gate.
    """
    plan = _PLAN_CACHE.get(netlist)
    if plan is None:
        plan = [
            (
                gate.output,
                _OPCODE[gate.gate_type],
                gate.inputs,
                gate.gate_type.inverting,
            )
            for gate in netlist.gate_sequence()
        ]
        _PLAN_CACHE[netlist] = plan
    return plan


#: Plan rows with integer net indices: ``(output, opcode, inputs, inverting)``.
IndexedRow = Tuple[int, int, Tuple[int, ...], bool]


class PackedPlan:
    """The compiled, integer-indexed evaluation plan of one netlist.

    Net index order is :meth:`Netlist.nets`: primary inputs first (in input
    order), then gate outputs in topological order -- so ``rows`` can be
    evaluated front to back over one flat state list.
    """

    __slots__ = (
        "netlist",
        "nets",
        "index",
        "rows",
        "num_inputs",
        "num_nets",
        "output_indices",
        "fanout",
        "reader_rows",
    )

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.nets: List[str] = netlist.nets()
        self.index: Dict[str, int] = {net: i for i, net in enumerate(self.nets)}
        self.num_inputs = netlist.num_inputs
        self.num_nets = len(self.nets)
        index = self.index
        self.rows: List[IndexedRow] = [
            (index[output], op, tuple(index[net] for net in inputs), inverting)
            for output, op, inputs, inverting in evaluation_plan(netlist)
        ]
        self.output_indices: Tuple[int, ...] = tuple(
            index[net] for net in netlist.outputs
        )
        fanout = netlist.fanout()
        self.fanout: List[Tuple[int, ...]] = [
            tuple(index[reader] for reader in fanout[net]) for net in self.nets
        ]
        # Row positions reading each net, ascending -- the event queue of
        # :class:`TernaryEventEngine` schedules re-evaluations with these.
        readers: List[List[int]] = [[] for _ in range(self.num_nets)]
        for position, (_output, _op, inputs, _inverting) in enumerate(self.rows):
            for net in set(inputs):
                readers[net].append(position)
        self.reader_rows: List[Tuple[int, ...]] = [
            tuple(positions) for positions in readers
        ]


_PACKED_PLAN_CACHE: "WeakKeyDictionary[Netlist, PackedPlan]" = WeakKeyDictionary()


def packed_plan(netlist: Netlist) -> PackedPlan:
    """The netlist's :class:`PackedPlan`, built once and cached."""
    plan = _PACKED_PLAN_CACHE.get(netlist)
    if plan is None:
        plan = PackedPlan(netlist)
        _PACKED_PLAN_CACHE[netlist] = plan
    return plan


# ----------------------------------------------------------------------
# Engine cores
# ----------------------------------------------------------------------
def eval_binary(
    plan: PackedPlan,
    values: List[int],
    mask: int,
    force_index: int = -1,
    force_word: int = 0,
) -> None:
    """Two-valued pattern-parallel evaluation over a pre-seeded state list.

    ``values[0:num_inputs]`` must hold the packed primary-input words; gate
    entries are written in place.  ``force_index >= 0`` overlays a stuck-at
    fault: that net is forced to ``force_word`` on every pattern (after its
    gate is evaluated; input sites must be forced by the caller before the
    call, since inputs have no plan row).
    """
    for output, op, inputs, inverting in plan.rows:
        if op == OP_AND:
            result = mask
            for net in inputs:
                result &= values[net]
        elif op == OP_OR:
            result = 0
            for net in inputs:
                result |= values[net]
        elif op == OP_XOR:
            result = 0
            for net in inputs:
                result ^= values[net]
        else:
            result = values[inputs[0]]
        if inverting:
            result = ~result & mask
        values[output] = force_word if output == force_index else result


def eval_ternary(
    plan: PackedPlan,
    values: List[int],
    cares: List[int],
    mask: int,
    force_index: int = -1,
    force_mask: int = 0,
    force_value: int = 0,
) -> None:
    """Three-valued (01X) evaluation over pre-seeded ``(value, care)`` lists.

    Input entries ``[0:num_inputs]`` must be seeded (care bit 0 = X); gate
    entries are written in place.  Value bits are kept masked to the care
    bits, so states are canonical and directly comparable.

    A fault overlay ``(force_index, force_mask, force_value)`` forces the
    net at ``force_index`` to the known value ``force_value`` on the
    patterns selected by ``force_mask`` -- the PODEM faulty machine passes
    ``force_mask = 0b10`` to poison only its own bit of the shared word.
    Input-site overlays must again be applied by the caller before the call.
    """
    for output, op, inputs, inverting in plan.rows:
        if op == OP_AND:
            # known-0 when any input is known-0; known-1 when all are known-1
            zero_any = 0
            one_all = mask
            for net in inputs:
                care = cares[net]
                value = values[net]
                zero_any |= care & ~value
                one_all &= value
            care = (zero_any | one_all) & mask
            value = one_all & care
        elif op == OP_OR:
            one_any = 0
            zero_all = mask
            for net in inputs:
                care = cares[net]
                value = values[net]
                one_any |= value
                zero_all &= care & ~value
            care = (one_any | zero_all) & mask
            value = one_any & care
        elif op == OP_XOR:
            care = mask
            value = 0
            for net in inputs:
                care &= cares[net]
                value ^= values[net]
            value &= care
        else:
            care = cares[inputs[0]]
            value = values[inputs[0]]
        if inverting:
            value = ~value & care
        if output == force_index:
            care |= force_mask
            value = (value & ~force_mask) | (force_value & force_mask)
        cares[output] = care
        values[output] = value


# ----------------------------------------------------------------------
# Event-driven incremental evaluation
# ----------------------------------------------------------------------
class TernaryEventEngine:
    """Persistent packed ternary state with fanout-cone event updates.

    Where :func:`eval_ternary` recomputes every gate of the plan,
    this engine keeps the two-word state alive between queries and, on each
    primary-input change, re-evaluates only the gates whose inputs actually
    changed: a levelized event queue (a min-heap of plan-row positions)
    walks the assigned input's fanout cone in topological order and stops
    propagating wherever the recomputed ``(value, care)`` pair equals the
    stored one.  Because rows are processed in ascending plan order, each
    gate is evaluated at most once per update, and the resulting state is
    identical to a from-scratch :func:`eval_ternary` pass over the same
    inputs -- the golden-equivalence tests pin this.

    Every overwritten word pair is pushed onto an **undo log**;
    :meth:`assign` returns the log position before the update, and
    :meth:`undo` rewinds to it.  That is exactly the shape of PODEM's
    decision stack: assign a primary input, recurse, and on backtrack
    restore the previous state in O(changed cone) instead of re-simulating
    the netlist.

    The engine carries the same stuck-at fault overlay as the batch
    evaluators: ``force_index`` is re-forced to ``(force_mask,
    force_value)`` whenever its net is re-evaluated (or re-assigned, for
    input sites), so a PODEM faulty machine stays poisoned across
    incremental updates.
    """

    __slots__ = (
        "plan",
        "mask",
        "values",
        "cares",
        "force_index",
        "force_mask",
        "force_value",
        "_undo",
        "events_processed",
        "max_undo_depth",
    )

    def __init__(
        self,
        plan: PackedPlan,
        mask: int,
        input_values: Optional[Dict[str, Optional[int]]] = None,
        force_index: int = -1,
        force_mask: int = 0,
        force_value: int = 0,
    ):
        self.plan = plan
        self.mask = mask
        self.force_index = force_index
        self.force_mask = force_mask
        self.force_value = force_value
        self._undo: List[Tuple[int, int, int]] = []
        # Lifetime telemetry: rows popped off the event queue and the high
        # watermark of the undo log.  Both are maintained with one integer
        # update per assign/propagate, cheap enough to keep unconditional.
        self.events_processed = 0
        self.max_undo_depth = 0
        values = [0] * plan.num_nets
        cares = [0] * plan.num_nets
        if input_values:
            nets = plan.nets
            for i in range(plan.num_inputs):
                bit = input_values.get(nets[i])
                if bit is not None:
                    cares[i] = mask
                    if bit:
                        values[i] = mask
        if 0 <= force_index < plan.num_inputs:
            # Input-site overlay: force before the baseline evaluation
            # (inputs have no plan row to force through).
            cares[force_index] |= force_mask
            values[force_index] = (values[force_index] & ~force_mask) | (
                force_value & force_mask
            )
            gate_force = -1
        else:
            gate_force = force_index
        self.values = values
        self.cares = cares
        eval_ternary(
            plan,
            values,
            cares,
            mask,
            force_index=gate_force,
            force_mask=force_mask,
            force_value=force_value,
        )

    def checkpoint(self) -> int:
        """The current undo-log position (rewind target for :meth:`undo`)."""
        return len(self._undo)

    def assign(self, index: int, bit: Optional[int]) -> int:
        """Set primary input ``index`` to 0, 1 or X on every pattern.

        Returns the undo token taken *before* the update; passing it to
        :meth:`undo` restores the exact prior state.
        """
        token = len(self._undo)
        mask = self.mask
        if bit is None:
            care = 0
            value = 0
        else:
            care = mask
            value = mask if bit else 0
        if index == self.force_index:
            care |= self.force_mask
            value = (value & ~self.force_mask) | (self.force_value & self.force_mask)
        values, cares = self.values, self.cares
        if cares[index] == care and values[index] == value:
            return token
        self._undo.append((index, values[index], cares[index]))
        values[index] = value
        cares[index] = care
        self._propagate(self.plan.reader_rows[index])
        if len(self._undo) > self.max_undo_depth:
            self.max_undo_depth = len(self._undo)
        return token

    def changed_indices(self, token: int) -> List[int]:
        """Net indices written since ``token`` (each at most once per assign)."""
        return [entry[0] for entry in self._undo[token:]]

    def undo(self, token: int) -> List[int]:
        """Rewind to a token returned by :meth:`assign`; returns the restored nets."""
        undo = self._undo
        values, cares = self.values, self.cares
        restored = []
        while len(undo) > token:
            index, value, care = undo.pop()
            values[index] = value
            cares[index] = care
            restored.append(index)
        return restored

    def _propagate(self, seed_rows: Sequence[int]) -> None:
        """Re-evaluate the dirty fanout cone in ascending plan order."""
        heap = list(seed_rows)
        heapq.heapify(heap)
        queued = set(heap)
        plan = self.plan
        rows = plan.rows
        reader_rows = plan.reader_rows
        values, cares = self.values, self.cares
        mask = self.mask
        force_index = self.force_index
        undo = self._undo
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            # Pops come out ascending and pushes only ever target strictly
            # larger positions, so a processed row can never be re-queued --
            # ``queued`` needs additions only, no removal on pop.
            position = pop(heap)
            output, op, inputs, inverting = rows[position]
            # Same row algebra as eval_ternary (kept in lockstep).
            if op == OP_AND:
                zero_any = 0
                one_all = mask
                for net in inputs:
                    care = cares[net]
                    value = values[net]
                    zero_any |= care & ~value
                    one_all &= value
                care = (zero_any | one_all) & mask
                value = one_all & care
            elif op == OP_OR:
                one_any = 0
                zero_all = mask
                for net in inputs:
                    care = cares[net]
                    value = values[net]
                    one_any |= value
                    zero_all &= care & ~value
                care = (one_any | zero_all) & mask
                value = one_any & care
            elif op == OP_XOR:
                care = mask
                value = 0
                for net in inputs:
                    care &= cares[net]
                    value ^= values[net]
                value &= care
            else:
                care = cares[inputs[0]]
                value = values[inputs[0]]
            if inverting:
                value = ~value & care
            if output == force_index:
                care |= self.force_mask
                value = (value & ~self.force_mask) | (
                    self.force_value & self.force_mask
                )
            if cares[output] == care and values[output] == value:
                continue
            undo.append((output, values[output], cares[output]))
            values[output] = value
            cares[output] = care
            for reader in reader_rows[output]:
                if reader not in queued:
                    queued.add(reader)
                    push(heap, reader)
        # Every queued row is popped exactly once, so the queue's final size
        # *is* the processed-event count -- no per-pop increment needed.
        self.events_processed += len(queued)


# ----------------------------------------------------------------------
# Packing helpers
# ----------------------------------------------------------------------
def seed_ternary_inputs(
    plan: PackedPlan,
    input_values: Dict[str, Optional[int]],
    patterns: int = 1,
) -> Tuple[List[int], List[int]]:
    """Fresh ``(values, cares)`` state lists seeded from a 0/1/X input dict.

    Missing inputs default to X.  Each specified input is replicated across
    all ``patterns`` bits (the PODEM dual machine then overlays its faulty
    pattern on top).
    """
    full = (1 << patterns) - 1
    values = [0] * plan.num_nets
    cares = [0] * plan.num_nets
    nets = plan.nets
    for i in range(plan.num_inputs):
        bit = input_values.get(nets[i], None)
        if bit is None:
            continue
        if bit not in (0, 1):
            raise ValueError(
                f"input {nets[i]!r} must be 0, 1 or None, got {bit!r}"
            )
        cares[i] = full
        if bit:
            values[i] = full
    return values, cares


def ternary_state_to_dict(
    plan: PackedPlan, values: Sequence[int], cares: Sequence[int], pattern: int = 0
) -> Dict[str, Optional[int]]:
    """One pattern of a packed ternary state as the classic 0/1/None dict."""
    bit = 1 << pattern
    out: Dict[str, Optional[int]] = {}
    for i, net in enumerate(plan.nets):
        if cares[i] & bit:
            out[net] = 1 if values[i] & bit else 0
        else:
            out[net] = None
    return out
