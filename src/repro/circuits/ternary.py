"""Packed two-word ternary (01X) simulation core.

Every simulator of the package -- plain 0/1 simulation, three-valued PODEM
simulation and pattern-parallel fault simulation -- evaluates the same
topologically ordered gate plan.  This module is the one engine behind all
of them.

Representation
--------------
A ternary signal is packed into **two words per net**: a *value* word and a
*care* word.  Bit ``p`` of the care word is 0 when the signal is ``X`` under
pattern ``p`` and 1 when it carries the known value stored in bit ``p`` of
the value word (value bits are always masked to 0 where the care bit is 0,
so equal states compare equal).  Words are plain Python integers, so the
pattern width is arbitrary: PODEM packs the good and the faulty machine into
a 2-bit word, fault simulation packs hundreds of patterns, and the uint64
blocks of the numpy embedding-matching layer are just this encoding sliced
into 64-bit words (see :meth:`repro.testdata.cube.TestCube.packed_words`).

Two-valued simulation is the ``care == mask`` special case; its inner loop
drops the care accumulator entirely, which keeps the binary fault-simulation
kernel at the exact operation count it had before this core existed.

Gate rules (the standard pessimistic 01X algebra)
-------------------------------------------------
* AND: known-0 when any input is known-0, known-1 when all inputs are
  known-1, else X -- ``care = zero_any | one_all``, ``value = one_all``.
* OR: dual of AND -- ``care = one_any | zero_all``, ``value = one_any``.
* XOR: known only when every input is known -- ``care = AND(cares)``,
  ``value = XOR(values) & care``.
* BUF: pass-through.  Inverting types flip ``value`` inside ``care``.

Fault overlays
--------------
Single stuck-at faults are injected as an *overlay*: after a net's gate is
evaluated (or before the plan runs, for primary-input sites), the net is
forced to ``care |= force_mask`` / ``value = stuck`` on the overlay
patterns only.  The same overlay drives PODEM's faulty machine (bit 1 of
its 2-bit word) and the dense reference path of the fault simulator.

The compiled plan (:func:`packed_plan`) indexes nets by position --
primary inputs first, then gate outputs in evaluation order -- so the hot
loops run on flat lists instead of name dictionaries.

Besides the two batch evaluators (:func:`eval_binary`, :func:`eval_ternary`)
the module provides :class:`TernaryEventEngine`: a persistent state that
updates incrementally when one primary input changes, re-evaluating only the
dirty fanout cone through per-level bucket queues and recording every
overwrite in an undo log so a caller (PODEM's backtracking search) can
rewind in O(changed cone).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.circuits.netlist import GateType, Netlist
from repro.lru import LRUCache

#: Opcodes of the compiled evaluation plans (shared by every simulator).
OP_AND, OP_OR, OP_XOR, OP_BUF = 0, 1, 2, 3

_OPCODE = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_AND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_OR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XOR,
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_BUF,
}

#: Name-based plan rows: ``(output, opcode, inputs, inverting)`` in
#: evaluation order (the fault simulator's fanout cones slice these).
PlanRow = Tuple[str, int, Tuple[str, ...], bool]

_PLAN_CACHE: "WeakKeyDictionary[Netlist, List[PlanRow]]" = WeakKeyDictionary()


def evaluation_plan(netlist: Netlist) -> List[PlanRow]:
    """The netlist's gates compiled to flat dispatch rows, cached.

    Resolving gate type to an opcode + inverting flag once per netlist (and
    not per gate visit) is what keeps every packed inner loop to a few
    integer operations per gate.
    """
    plan = _PLAN_CACHE.get(netlist)
    if plan is None:
        plan = [
            (
                gate.output,
                _OPCODE[gate.gate_type],
                gate.inputs,
                gate.gate_type.inverting,
            )
            for gate in netlist.gate_sequence()
        ]
        _PLAN_CACHE[netlist] = plan
    return plan


#: Plan rows with integer net indices: ``(output, opcode, inputs, inverting)``.
IndexedRow = Tuple[int, int, Tuple[int, ...], bool]

#: Fused opcodes of :attr:`PackedPlan.fused_rows`: 2- and 3-input
#: AND/OR/XOR (together the vast majority of gates in every netlist this
#: package sees) and the 1-input buffer carry their operand indices inline,
#: so the event engine's hot loop computes them with straight-line integer
#: algebra instead of the generic reduce over an input tuple.  Gates with
#: any other arity keep their generic opcode (``OP_AND``/``OP_OR``/
#: ``OP_XOR``) and fall through to the reduce loop.
_F_AND2, _F_OR2, _F_XOR2, _F_BUF = 4, 5, 6, 7
_F_AND3, _F_OR3, _F_XOR3 = 8, 9, 10

_FUSED_2IN = {OP_AND: _F_AND2, OP_OR: _F_OR2, OP_XOR: _F_XOR2}
_FUSED_3IN = {OP_AND: _F_AND3, OP_OR: _F_OR3, OP_XOR: _F_XOR3}

#: Lookup tables for 2-bit (``mask == 0b11``) engines, keyed by fused
#: opcode and the row's ``inverting`` flag.  Every operand word of a
#: 2-bit engine is one of 16 states ``(value << 2) | care``, so a whole
#: row evaluates as two list indexings on a key built from shifted
#: operand states -- no bit algebra, no opcode dispatch beyond arity,
#: and the inversion folded into the table.  Shared process-wide; at
#: most 14 table pairs of <= 4096 small ints each.
#: 14 (fused op, inverting) pairs exist, so the bound never evicts; the
#: LRUCache is the bounded-cache discipline, not a working-set limit.
_TABLE_CACHE: LRUCache = LRUCache(32)


def _fused_tables(op: int, inverting: bool) -> Tuple[List[int], List[int]]:
    cached = _TABLE_CACHE.get((op, inverting))
    if cached is not None:
        return cached
    if op == _F_BUF:
        size = 16
    elif op in (_F_AND2, _F_OR2, _F_XOR2):
        size = 256
    else:
        size = 4096
    value_table = [0] * size
    care_table = [0] * size
    for key in range(size):
        # Decode operand states; same row algebra as the inline fused
        # arms of TernaryEventEngine._propagate, specialised to mask 3.
        va, ca = (key >> 6) & 3, (key >> 4) & 3
        vb, cb = (key >> 2) & 3, key & 3
        if op == _F_BUF:
            va, ca = (key >> 2) & 3, key & 3
            value, care = va, ca
        elif op == _F_AND2:
            care = ((ca & ~va) | (cb & ~vb) | (va & vb)) & 3
            value = va & vb & care
        elif op == _F_OR2:
            value = va | vb
            care = (value | (ca & ~va & cb & ~vb)) & 3
            value &= care
        elif op == _F_XOR2:
            care = ca & cb
            value = (va ^ vb) & care
        else:
            va, ca = (key >> 10) & 3, (key >> 8) & 3
            vb, cb = (key >> 6) & 3, (key >> 4) & 3
            vc, cc = (key >> 2) & 3, key & 3
            if op == _F_AND3:
                care = (
                    (ca & ~va) | (cb & ~vb) | (cc & ~vc) | (va & vb & vc)
                ) & 3
                value = va & vb & vc & care
            elif op == _F_OR3:
                value = va | vb | vc
                care = (value | (ca & ~va & cb & ~vb & cc & ~vc)) & 3
                value &= care
            else:
                care = ca & cb & cc
                value = (va ^ vb ^ vc) & care
        if inverting:
            value = ~value & care
        value_table[key] = value
        care_table[key] = care
    tables = (value_table, care_table)
    _TABLE_CACHE.put((op, inverting), tables)
    return tables

#: Fused rows: ``(output, fused_op, a, b, c, inputs, inverting)``.
#: ``a``/``b``/``c`` are the operand net indices of fused ops (unused
#: trailing operands are -1) and all -1 for generic ops, which read
#: ``inputs`` instead.
FusedRow = Tuple[int, int, int, int, int, Tuple[int, ...], bool]

#: Table rows: ``(output, arity, a, b, c, value_table, care_table)``.
#: ``arity`` is 1/2/3 for table-evaluated rows and 0 for generic rows
#: (arity > 3), which fall back to the fused-row reduce.
TableRow = Tuple[
    int, int, int, int, int, Optional[List[int]], Optional[List[int]]
]


class PackedPlan:
    """The compiled, integer-indexed evaluation plan of one netlist.

    Net index order is :meth:`Netlist.nets`: primary inputs first (in input
    order), then gate outputs in topological order -- so ``rows`` can be
    evaluated front to back over one flat state list.
    """

    __slots__ = (
        "netlist",
        "nets",
        "index",
        "rows",
        "num_inputs",
        "num_nets",
        "output_indices",
        "fanout",
        "reader_rows",
        "row_levels",
        "num_levels",
        "fused_rows",
        "_table_rows",
    )

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.nets: List[str] = netlist.nets()
        self.index: Dict[str, int] = {net: i for i, net in enumerate(self.nets)}
        self.num_inputs = netlist.num_inputs
        self.num_nets = len(self.nets)
        index = self.index
        self.rows: List[IndexedRow] = [
            (index[output], op, tuple(index[net] for net in inputs), inverting)
            for output, op, inputs, inverting in evaluation_plan(netlist)
        ]
        self.output_indices: Tuple[int, ...] = tuple(
            index[net] for net in netlist.outputs
        )
        fanout = netlist.fanout()
        self.fanout: List[Tuple[int, ...]] = [
            tuple(index[reader] for reader in fanout[net]) for net in self.nets
        ]
        # Row positions reading each net, ascending -- the event queue of
        # :class:`TernaryEventEngine` schedules re-evaluations with these.
        readers: List[List[int]] = [[] for _ in range(self.num_nets)]
        for position, (_output, _op, inputs, _inverting) in enumerate(self.rows):
            for net in set(inputs):
                readers[net].append(position)
        self.reader_rows: List[Tuple[int, ...]] = [
            tuple(positions) for positions in readers
        ]
        # Topological levels: primary inputs are level 0, each gate output
        # is one past its deepest input.  A row only ever reads nets of
        # strictly lower levels, so the event engine can drain dense
        # per-level buckets in level order instead of a heap.  The fused
        # rows mirror ``rows`` with 2-input AND/OR/XOR and BUF remapped to
        # inline-operand opcodes (see :data:`_F_AND2`).
        levels = [0] * self.num_nets
        row_levels: List[int] = []
        fused: List[FusedRow] = []
        for output, op, inputs, inverting in self.rows:
            level = 1 + max(levels[net] for net in inputs)
            levels[output] = level
            row_levels.append(level)
            if op == OP_BUF:
                fused.append(
                    (output, _F_BUF, inputs[0], -1, -1, inputs, inverting)
                )
            elif len(inputs) == 2:
                fused.append(
                    (
                        output,
                        _FUSED_2IN[op],
                        inputs[0],
                        inputs[1],
                        -1,
                        inputs,
                        inverting,
                    )
                )
            elif len(inputs) == 3:
                fused.append(
                    (
                        output,
                        _FUSED_3IN[op],
                        inputs[0],
                        inputs[1],
                        inputs[2],
                        inputs,
                        inverting,
                    )
                )
            else:
                fused.append((output, op, -1, -1, -1, inputs, inverting))
        self.row_levels: List[int] = row_levels
        self.num_levels: int = (max(row_levels) + 1) if row_levels else 1
        self.fused_rows: List[FusedRow] = fused
        self._table_rows: Optional[List[TableRow]] = None

    def table_rows(self) -> List[TableRow]:
        """Lookup-table rows for 2-bit engines, built lazily per plan.

        Only valid when the engine mask is ``0b11`` (the PODEM dual-word
        encoding): each operand word is then one of 16 states, so rows
        evaluate by indexing the shared :func:`_fused_tables` pair with a
        key of shifted operand states.
        """
        trows = self._table_rows
        if trows is None:
            trows = []
            for output, op, a, b, c, _inputs, inverting in self.fused_rows:
                if op == _F_BUF:
                    arity = 1
                elif op in (_F_AND2, _F_OR2, _F_XOR2):
                    arity = 2
                elif op in (_F_AND3, _F_OR3, _F_XOR3):
                    arity = 3
                else:
                    trows.append((output, 0, -1, -1, -1, None, None))
                    continue
                value_table, care_table = _fused_tables(op, inverting)
                trows.append((output, arity, a, b, c, value_table, care_table))
            self._table_rows = trows
        return trows


_PACKED_PLAN_CACHE: "WeakKeyDictionary[Netlist, PackedPlan]" = WeakKeyDictionary()


def packed_plan(netlist: Netlist) -> PackedPlan:
    """The netlist's :class:`PackedPlan`, built once and cached."""
    plan = _PACKED_PLAN_CACHE.get(netlist)
    if plan is None:
        plan = PackedPlan(netlist)
        _PACKED_PLAN_CACHE[netlist] = plan
    return plan


# ----------------------------------------------------------------------
# Engine cores
# ----------------------------------------------------------------------
def eval_binary(
    plan: PackedPlan,
    values: List[int],
    mask: int,
    force_index: int = -1,
    force_word: int = 0,
) -> None:
    """Two-valued pattern-parallel evaluation over a pre-seeded state list.

    ``values[0:num_inputs]`` must hold the packed primary-input words; gate
    entries are written in place.  ``force_index >= 0`` overlays a stuck-at
    fault: that net is forced to ``force_word`` on every pattern (after its
    gate is evaluated; input sites must be forced by the caller before the
    call, since inputs have no plan row).
    """
    for output, op, inputs, inverting in plan.rows:
        if op == OP_AND:
            result = mask
            for net in inputs:
                result &= values[net]
        elif op == OP_OR:
            result = 0
            for net in inputs:
                result |= values[net]
        elif op == OP_XOR:
            result = 0
            for net in inputs:
                result ^= values[net]
        else:
            result = values[inputs[0]]
        if inverting:
            result = ~result & mask
        values[output] = force_word if output == force_index else result


def eval_ternary(
    plan: PackedPlan,
    values: List[int],
    cares: List[int],
    mask: int,
    force_index: int = -1,
    force_mask: int = 0,
    force_value: int = 0,
) -> None:
    """Three-valued (01X) evaluation over pre-seeded ``(value, care)`` lists.

    Input entries ``[0:num_inputs]`` must be seeded (care bit 0 = X); gate
    entries are written in place.  Value bits are kept masked to the care
    bits, so states are canonical and directly comparable.

    A fault overlay ``(force_index, force_mask, force_value)`` forces the
    net at ``force_index`` to the known value ``force_value`` on the
    patterns selected by ``force_mask`` -- the PODEM faulty machine passes
    ``force_mask = 0b10`` to poison only its own bit of the shared word.
    Input-site overlays must again be applied by the caller before the call.
    """
    for output, op, inputs, inverting in plan.rows:
        if op == OP_AND:
            # known-0 when any input is known-0; known-1 when all are known-1
            zero_any = 0
            one_all = mask
            for net in inputs:
                care = cares[net]
                value = values[net]
                zero_any |= care & ~value
                one_all &= value
            care = (zero_any | one_all) & mask
            value = one_all & care
        elif op == OP_OR:
            one_any = 0
            zero_all = mask
            for net in inputs:
                care = cares[net]
                value = values[net]
                one_any |= value
                zero_all &= care & ~value
            care = (one_any | zero_all) & mask
            value = one_any & care
        elif op == OP_XOR:
            care = mask
            value = 0
            for net in inputs:
                care &= cares[net]
                value ^= values[net]
            value &= care
        else:
            care = cares[inputs[0]]
            value = values[inputs[0]]
        if inverting:
            value = ~value & care
        if output == force_index:
            care |= force_mask
            value = (value & ~force_mask) | (force_value & force_mask)
        cares[output] = care
        values[output] = value


# ----------------------------------------------------------------------
# Event-driven incremental evaluation
# ----------------------------------------------------------------------
class TernaryEventEngine:
    """Persistent packed ternary state with fanout-cone event updates.

    Where :func:`eval_ternary` recomputes every gate of the plan,
    this engine keeps the two-word state alive between queries and, on each
    primary-input change, re-evaluates only the gates whose inputs actually
    changed: dirty plan rows are dropped into dense per-level bucket queues
    (levels precomputed in :attr:`PackedPlan.row_levels`) and drained in
    level order, which walks the assigned input's fanout cone topologically
    without a single heap push/pop and stops propagating wherever the
    recomputed ``(value, care)`` pair equals the stored one.  A row only
    reads nets of strictly lower levels, so draining level ``L`` can only
    enqueue rows at levels ``> L``: each gate is evaluated at most once per
    update, and the resulting state is identical to a from-scratch
    :func:`eval_ternary` pass over the same inputs -- the
    golden-equivalence tests pin this.

    The hot loop dispatches on :attr:`PackedPlan.fused_rows`: 2-input
    AND/OR/XOR gates (the vast majority) and buffers are computed with
    straight-line two-operand algebra; only wider gates fall through to the
    generic reduce over the input tuple.

    Every overwritten word pair is pushed onto an **undo log**;
    :meth:`assign` returns the log position before the update, and
    :meth:`undo` rewinds to it.  That is exactly the shape of PODEM's
    decision stack: assign a primary input, recurse, and on backtrack
    restore the previous state in O(changed cone) instead of re-simulating
    the netlist.

    The engine carries the same stuck-at fault overlay as the batch
    evaluators: ``force_index`` is re-forced to ``(force_mask,
    force_value)`` whenever its net is re-evaluated (or re-assigned, for
    input sites), so a PODEM faulty machine stays poisoned across
    incremental updates.  Overlays can also be installed *after*
    construction with :meth:`reforce` and dropped with
    :meth:`release_force` -- both ride the undo log, so one engine can be
    rewound to its empty-assignment checkpoint and re-forced for the next
    targeted fault instead of being rebuilt from scratch.
    """

    __slots__ = (
        "plan",
        "mask",
        "values",
        "cares",
        "force_index",
        "force_mask",
        "force_value",
        "_undo",
        "_buckets",
        "_pending",
        "_trows",
        "events_processed",
        "propagate_passes",
        "max_undo_depth",
    )

    def __init__(
        self,
        plan: PackedPlan,
        mask: int,
        input_values: Optional[Dict[str, Optional[int]]] = None,
        force_index: int = -1,
        force_mask: int = 0,
        force_value: int = 0,
    ):
        self.plan = plan
        self.mask = mask
        self.force_index = force_index
        self.force_mask = force_mask
        self.force_value = force_value
        self._undo: List[Tuple[int, int, int]] = []
        # Per-level bucket queues, reused across propagations; a row is in
        # a bucket iff its ``_pending`` stamp equals the current pass
        # number, so each row is queued at most once per pass and no
        # per-row clearing is needed between passes.
        self._buckets: List[List[int]] = [[] for _ in range(plan.num_levels)]
        self._pending: List[int] = [0] * len(plan.rows)
        # 2-bit engines (the PODEM dual-word encoding) evaluate rows via
        # the shared state lookup tables instead of inline bit algebra.
        self._trows: Optional[List[TableRow]] = (
            plan.table_rows() if mask == 0b11 else None
        )
        # Lifetime telemetry: rows drained from the bucket queues, bucket
        # passes run, and the high watermark of the undo log.  All are
        # maintained with one integer update per assign/propagate, cheap
        # enough to keep unconditional.
        self.events_processed = 0
        self.propagate_passes = 0
        self.max_undo_depth = 0
        values = [0] * plan.num_nets
        cares = [0] * plan.num_nets
        if input_values:
            nets = plan.nets
            for i in range(plan.num_inputs):
                bit = input_values.get(nets[i])
                if bit is not None:
                    cares[i] = mask
                    if bit:
                        values[i] = mask
        if 0 <= force_index < plan.num_inputs:
            # Input-site overlay: force before the baseline evaluation
            # (inputs have no plan row to force through).
            cares[force_index] |= force_mask
            values[force_index] = (values[force_index] & ~force_mask) | (
                force_value & force_mask
            )
            gate_force = -1
        else:
            gate_force = force_index
        self.values = values
        self.cares = cares
        eval_ternary(
            plan,
            values,
            cares,
            mask,
            force_index=gate_force,
            force_mask=force_mask,
            force_value=force_value,
        )

    def checkpoint(self) -> int:
        """The current undo-log position (rewind target for :meth:`undo`)."""
        return len(self._undo)

    def assign(self, index: int, bit: Optional[int]) -> int:
        """Set primary input ``index`` to 0, 1 or X on every pattern.

        Returns the undo token taken *before* the update; passing it to
        :meth:`undo` restores the exact prior state.
        """
        token = len(self._undo)
        mask = self.mask
        if bit is None:
            care = 0
            value = 0
        else:
            care = mask
            value = mask if bit else 0
        if index == self.force_index:
            care |= self.force_mask
            value = (value & ~self.force_mask) | (self.force_value & self.force_mask)
        values, cares = self.values, self.cares
        if cares[index] == care and values[index] == value:
            return token
        self._undo.append((index, values[index], cares[index]))
        values[index] = value
        cares[index] = care
        self._propagate(self.plan.reader_rows[index])
        if len(self._undo) > self.max_undo_depth:
            self.max_undo_depth = len(self._undo)
        return token

    def changed_indices(self, token: int) -> List[int]:
        """Net indices written since ``token`` (each at most once per assign)."""
        return [entry[0] for entry in self._undo[token:]]

    def changed_entries(self, token: int) -> List[Tuple[int, int, int]]:
        """The raw ``(index, value, care)`` log slice since ``token``.

        Entries hold the *pre-change* words (the log records overwrites);
        callers wanting the live words index the state lists.
        """
        return self._undo[token:]

    def undo(self, token: int) -> List[int]:
        """Rewind to a token returned by :meth:`assign`; returns the restored nets."""
        undo = self._undo
        values, cares = self.values, self.cares
        restored = []
        while len(undo) > token:
            index, value, care = undo.pop()
            values[index] = value
            cares[index] = care
            restored.append(index)
        return restored

    def rewind(self, token: int) -> List[Tuple[int, int, int]]:
        """:meth:`undo`, returning the restored ``(index, value, care)`` log slice.

        The slice is in log (chronological) order; entries are replayed
        newest first, so when an index was overwritten several times since
        the token its *earliest* entry is the one left in the state.  A
        caller tracking derived per-net bookkeeping can read the restored
        words straight off the entries (iterating the slice in reverse)
        instead of re-indexing the state lists.
        """
        undo = self._undo
        entries = undo[token:]
        values, cares = self.values, self.cares
        for index, value, care in reversed(entries):
            values[index] = value
            cares[index] = care
        del undo[token:]
        return entries

    def reforce(self, force_index: int, force_mask: int, force_value: int) -> int:
        """Install a stuck-at overlay on the live state; undoable.

        Equivalent to constructing a fresh engine with the overlay on the
        same assignment: the forced net's stored words get ``care |=
        force_mask`` / the forced value bits, and the change (if any)
        propagates through its fanout cone.  Returns an undo token for
        :meth:`release_force`, which drops the overlay and rewinds -- the
        pair is what lets PODEM keep one engine across targeted faults
        instead of rebuilding two state lists plus a full evaluation each
        time.
        """
        token = len(self._undo)
        self.force_index = force_index
        self.force_mask = force_mask
        self.force_value = force_value
        values, cares = self.values, self.cares
        old_value = values[force_index]
        old_care = cares[force_index]
        care = old_care | force_mask
        value = (old_value & ~force_mask) | (force_value & force_mask)
        if old_care != care or old_value != value:
            self._undo.append((force_index, old_value, old_care))
            values[force_index] = value
            cares[force_index] = care
            self._propagate(self.plan.reader_rows[force_index])
        if len(self._undo) > self.max_undo_depth:
            self.max_undo_depth = len(self._undo)
        return token

    def release_force(self, token: int) -> List[Tuple[int, int, int]]:
        """Drop the :meth:`reforce` overlay and rewind to its token.

        Returns the restored log slice (see :meth:`rewind`).
        """
        self.force_index = -1
        self.force_mask = 0
        self.force_value = 0
        return self.rewind(token)

    def _propagate(self, seed_rows: Sequence[int]) -> None:
        """Re-evaluate the dirty fanout cone, one level bucket at a time."""
        if self._trows is not None:
            self._propagate_tables(seed_rows)
            return
        plan = self.plan
        rows = plan.fused_rows
        row_levels = plan.row_levels
        reader_rows = plan.reader_rows
        buckets = self._buckets
        pending = self._pending
        values, cares = self.values, self.cares
        mask = self.mask
        force_index = self.force_index
        undo = self._undo
        self.propagate_passes = stamp = self.propagate_passes + 1
        lo = plan.num_levels
        for position in seed_rows:
            if pending[position] != stamp:
                pending[position] = stamp
                level = row_levels[position]
                buckets[level].append(position)
                if level < lo:
                    lo = level
        events = 0
        for level in range(lo, plan.num_levels):
            bucket = buckets[level]
            if not bucket:
                continue
            # Draining level L only ever appends to buckets > L (a reader
            # sits one past its deepest input), so iterating the bucket
            # while higher ones grow is safe, and a drained row can never
            # be re-queued within this pass.
            for position in bucket:
                output, op, a, b, c, inputs, inverting = rows[position]
                # Same row algebra as eval_ternary (kept in lockstep),
                # with the dominant 2-/3-input and BUF shapes fused to
                # straight-line operand reads.
                if op == _F_AND2:
                    va = values[a]
                    vb = values[b]
                    care = ((cares[a] & ~va) | (cares[b] & ~vb) | (va & vb)) & mask
                    value = va & vb & care
                elif op == _F_OR2:
                    va = values[a]
                    vb = values[b]
                    value = va | vb
                    care = (value | (cares[a] & ~va & cares[b] & ~vb)) & mask
                    value &= care
                elif op == _F_AND3:
                    va = values[a]
                    vb = values[b]
                    vc = values[c]
                    care = (
                        (cares[a] & ~va)
                        | (cares[b] & ~vb)
                        | (cares[c] & ~vc)
                        | (va & vb & vc)
                    ) & mask
                    value = va & vb & vc & care
                elif op == _F_OR3:
                    va = values[a]
                    vb = values[b]
                    vc = values[c]
                    value = va | vb | vc
                    care = (
                        value | (cares[a] & ~va & cares[b] & ~vb & cares[c] & ~vc)
                    ) & mask
                    value &= care
                elif op == _F_BUF:
                    care = cares[a]
                    value = values[a]
                elif op == _F_XOR2:
                    care = cares[a] & cares[b]
                    value = (values[a] ^ values[b]) & care
                elif op == _F_XOR3:
                    care = cares[a] & cares[b] & cares[c]
                    value = (values[a] ^ values[b] ^ values[c]) & care
                elif op == OP_AND:
                    zero_any = 0
                    one_all = mask
                    for net in inputs:
                        care = cares[net]
                        value = values[net]
                        zero_any |= care & ~value
                        one_all &= value
                    care = (zero_any | one_all) & mask
                    value = one_all & care
                elif op == OP_OR:
                    one_any = 0
                    zero_all = mask
                    for net in inputs:
                        care = cares[net]
                        value = values[net]
                        one_any |= value
                        zero_all &= care & ~value
                    care = (one_any | zero_all) & mask
                    value = one_any & care
                else:
                    care = mask
                    value = 0
                    for net in inputs:
                        care &= cares[net]
                        value ^= values[net]
                    value &= care
                if inverting:
                    value = ~value & care
                if output == force_index:
                    care |= self.force_mask
                    value = (value & ~self.force_mask) | (
                        self.force_value & self.force_mask
                    )
                old_care = cares[output]
                old_value = values[output]
                if old_care == care and old_value == value:
                    continue
                undo.append((output, old_value, old_care))
                values[output] = value
                cares[output] = care
                for reader in reader_rows[output]:
                    if pending[reader] != stamp:
                        pending[reader] = stamp
                        buckets[row_levels[reader]].append(reader)
            # The bucket only ever shrinks to empty here (appends went to
            # higher levels), so its length is the drained-event count.
            events += len(bucket)
            del bucket[:]
        self.events_processed += events

    def _propagate_tables(self, seed_rows: Sequence[int]) -> None:
        """The 2-bit fast path of :meth:`_propagate`.

        Identical bucket drain, but each row evaluates as two list
        indexings into the precomputed state tables (inversion folded
        in), keyed by the shifted 4-bit operand states.  Bit-identical
        to the generic loop: the tables are built from the same row
        algebra over every reachable operand state.
        """
        plan = self.plan
        trows = self._trows
        frows = plan.fused_rows
        row_levels = plan.row_levels
        reader_rows = plan.reader_rows
        buckets = self._buckets
        pending = self._pending
        values, cares = self.values, self.cares
        force_index = self.force_index
        undo = self._undo
        self.propagate_passes = stamp = self.propagate_passes + 1
        lo = plan.num_levels
        for position in seed_rows:
            if pending[position] != stamp:
                pending[position] = stamp
                level = row_levels[position]
                buckets[level].append(position)
                if level < lo:
                    lo = level
        events = 0
        for level in range(lo, plan.num_levels):
            bucket = buckets[level]
            if not bucket:
                continue
            for position in bucket:
                output, arity, a, b, c, value_table, care_table = trows[
                    position
                ]
                if arity == 2:
                    key = (
                        (values[a] << 6)
                        | (cares[a] << 4)
                        | (values[b] << 2)
                        | cares[b]
                    )
                    value = value_table[key]
                    care = care_table[key]
                elif arity == 3:
                    key = (
                        (values[a] << 10)
                        | (cares[a] << 8)
                        | (values[b] << 6)
                        | (cares[b] << 4)
                        | (values[c] << 2)
                        | cares[c]
                    )
                    value = value_table[key]
                    care = care_table[key]
                elif arity == 1:
                    key = (values[a] << 2) | cares[a]
                    value = value_table[key]
                    care = care_table[key]
                else:
                    # Generic reduce for arity > 3, shared with the
                    # non-table loop via the fused-row operand tuple.
                    _out, op, _a, _b, _c, inputs, inverting = frows[position]
                    if op == OP_AND:
                        zero_any = 0
                        one_all = 0b11
                        for net in inputs:
                            care = cares[net]
                            value = values[net]
                            zero_any |= care & ~value
                            one_all &= value
                        care = (zero_any | one_all) & 0b11
                        value = one_all & care
                    elif op == OP_OR:
                        one_any = 0
                        zero_all = 0b11
                        for net in inputs:
                            care = cares[net]
                            value = values[net]
                            one_any |= value
                            zero_all &= care & ~value
                        care = (one_any | zero_all) & 0b11
                        value = one_any & care
                    else:
                        care = 0b11
                        value = 0
                        for net in inputs:
                            care &= cares[net]
                            value ^= values[net]
                        value &= care
                    if inverting:
                        value = ~value & care
                if output == force_index:
                    care |= self.force_mask
                    value = (value & ~self.force_mask) | (
                        self.force_value & self.force_mask
                    )
                old_care = cares[output]
                old_value = values[output]
                if old_care == care and old_value == value:
                    continue
                undo.append((output, old_value, old_care))
                values[output] = value
                cares[output] = care
                for reader in reader_rows[output]:
                    if pending[reader] != stamp:
                        pending[reader] = stamp
                        buckets[row_levels[reader]].append(reader)
            events += len(bucket)
            del bucket[:]
        self.events_processed += events


# ----------------------------------------------------------------------
# Packing helpers
# ----------------------------------------------------------------------
def seed_ternary_inputs(
    plan: PackedPlan,
    input_values: Dict[str, Optional[int]],
    patterns: int = 1,
) -> Tuple[List[int], List[int]]:
    """Fresh ``(values, cares)`` state lists seeded from a 0/1/X input dict.

    Missing inputs default to X.  Each specified input is replicated across
    all ``patterns`` bits (the PODEM dual machine then overlays its faulty
    pattern on top).
    """
    full = (1 << patterns) - 1
    values = [0] * plan.num_nets
    cares = [0] * plan.num_nets
    nets = plan.nets
    for i in range(plan.num_inputs):
        bit = input_values.get(nets[i], None)
        if bit is None:
            continue
        if bit not in (0, 1):
            raise ValueError(
                f"input {nets[i]!r} must be 0, 1 or None, got {bit!r}"
            )
        cares[i] = full
        if bit:
            values[i] = full
    return values, cares


def ternary_state_to_dict(
    plan: PackedPlan, values: Sequence[int], cares: Sequence[int], pattern: int = 0
) -> Dict[str, Optional[int]]:
    """One pattern of a packed ternary state as the classic 0/1/None dict."""
    bit = 1 << pattern
    out: Dict[str, Optional[int]] = {}
    for i, net in enumerate(plan.nets):
        if cares[i] & bit:
            out[net] = 1 if values[i] & bit else 0
        else:
            out[net] = None
    return out
