"""Built-in example circuits.

The circuits here are small but genuine: they feed the unit tests, the
documentation examples and the quickstart ATPG flow.  Each function returns a
fresh :class:`~repro.circuits.netlist.Netlist`.
"""

from __future__ import annotations

from typing import List

from repro.circuits.bench import parse_bench
from repro.circuits.netlist import Gate, GateType, Netlist

#: The ISCAS'85 c17 benchmark, the "hello world" of test generation.
C17_BENCH = """
# c17 (ISCAS'85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Netlist:
    """The ISCAS'85 c17 benchmark (5 inputs, 2 outputs, 6 NAND gates)."""
    return parse_bench(C17_BENCH, name="c17")


def carry_ripple_adder(width: int = 4) -> Netlist:
    """A ``width``-bit ripple-carry adder built from full-adder cells."""
    if width < 1:
        raise ValueError("width must be at least 1")
    inputs: List[str] = []
    gates: List[Gate] = []
    outputs: List[str] = []
    carry = None
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        inputs.extend([a, b])
        p = f"p{i}"
        gates.append(Gate(p, GateType.XOR, (a, b)))
        g = f"g{i}"
        gates.append(Gate(g, GateType.AND, (a, b)))
        if carry is None:
            outputs.append(p)  # sum bit 0 with carry-in 0
            carry = g
        else:
            s = f"s{i}"
            gates.append(Gate(s, GateType.XOR, (p, carry)))
            outputs.append(s)
            t = f"t{i}"
            gates.append(Gate(t, GateType.AND, (p, carry)))
            new_carry = f"c{i}"
            gates.append(Gate(new_carry, GateType.OR, (g, t)))
            carry = new_carry
    outputs.append(carry)
    return Netlist(name=f"adder{width}", inputs=inputs, outputs=outputs, gates=gates)


def majority_voter(width: int = 3) -> Netlist:
    """An N-input majority voter (odd ``width``), a classic redundancy block."""
    if width < 3 or width % 2 == 0:
        raise ValueError("width must be an odd number >= 3")
    inputs = [f"in{i}" for i in range(width)]
    gates: List[Gate] = []
    # Majority of N = OR over all (N+1)//2-subsets of ANDs; for small widths
    # this stays tiny and keeps the circuit easy to reason about in tests.
    from itertools import combinations

    terms = []
    threshold = width // 2 + 1
    for index, subset in enumerate(combinations(range(width), threshold)):
        term = f"and{index}"
        gates.append(Gate(term, GateType.AND, tuple(inputs[i] for i in subset)))
        terms.append(term)
    gates.append(Gate("vote", GateType.OR, tuple(terms)))
    return Netlist(
        name=f"majority{width}", inputs=inputs, outputs=["vote"], gates=gates
    )


def parity_tree(width: int = 8) -> Netlist:
    """An XOR parity tree -- every input stuck-at fault needs a distinct test."""
    if width < 2:
        raise ValueError("width must be at least 2")
    inputs = [f"d{i}" for i in range(width)]
    gates: List[Gate] = []
    level = list(inputs)
    counter = 0
    while len(level) > 1:
        next_level = []
        for i in range(0, len(level) - 1, 2):
            net = f"x{counter}"
            counter += 1
            gates.append(Gate(net, GateType.XOR, (level[i], level[i + 1])))
            next_level.append(net)
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    return Netlist(name=f"parity{width}", inputs=inputs, outputs=[level[0]], gates=gates)


def builtin_circuits() -> List[Netlist]:
    """All built-in circuits (used by documentation and smoke tests)."""
    return [c17(), carry_ripple_adder(4), majority_voter(3), parity_tree(8)]
