"""Content-addressed JSON-lines result store.

Every campaign job is identified by a *result key*: a stable hash of the
test-set fingerprint (:meth:`repro.testdata.test_set.TestSet.fingerprint`)
and the config cache key (:meth:`repro.config.CompressionConfig.cache_key`).
The store is an append-only ``results.jsonl`` file inside a store directory;
each line is one :class:`StoredResult` record.  Loading builds an in-memory
index keyed by result key with last-record-wins semantics, so re-running a
job simply supersedes the old record.

Because the key depends only on *content* (which cubes, which knobs), not on
job names or spec files, any two campaigns that touch the same
(test set, config) point share the cached result -- resume is free and so is
cross-campaign deduplication.

Concurrency: writers hold an fcntl advisory lock (``.writer.lock`` in the
store directory, acquired on the first :meth:`put` or an explicit
:meth:`lock`).  A second concurrent writer fails fast with
:class:`StoreLockedError` naming the holder pid instead of silently
interleaving appends; a lock whose recorded holder died (SIGKILL, OOM) is
taken over automatically.  Read-only opens (``read_only=True``) never touch
the lock *or* the file itself, so ``repro stats`` works against a store a
live campaign is writing.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

try:  # pragma: no cover - fcntl is always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - Windows: advisory locking disabled
    fcntl = None

from repro.config import CompressionConfig

RESULTS_FILENAME = "results.jsonl"
LOCK_FILENAME = ".writer.lock"

#: Status of a stored record.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class StoreLockedError(RuntimeError):
    """Another live process holds the store's writer lock."""

    def __init__(self, path: Path, holder_pid: Optional[int]):
        self.path = path
        self.holder_pid = holder_pid
        holder = (
            f"running process {holder_pid}"
            if holder_pid is not None
            else "another running process"
        )
        super().__init__(
            f"result store {path} is already being written by {holder}; "
            f"wait for it to finish, or open the store read-only "
            f"(e.g. `repro stats`) for inspection"
        )


def result_key(fingerprint: str, config: CompressionConfig) -> str:
    """Stable content hash identifying one (test set, config) run."""
    payload = f"{fingerprint}:{config.cache_key()}"
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:20]


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid exists, other user
        return True
    return True


@dataclass
class StoredResult:
    """One persisted job outcome.

    ``stage_timings`` (stage name -> wall seconds) and ``cache_stats``
    (context-cache hit/miss counters) describe how the staged pipeline
    spent its time when the job was computed; both are ``None`` for records
    written before the staged runner existed (old stores stay loadable).
    ``retried`` counts the worker crashes this job survived before the
    recorded outcome, and ``exhausted`` marks an ``error`` record written
    because the crash-retry budget ran out -- both default to the
    pre-resilience values, so old stores stay loadable here too.
    """

    key: str
    job_id: str
    circuit: str
    fingerprint: str
    config: Dict[str, object]
    status: str
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    stage_timings: Optional[Dict[str, float]] = None
    cache_stats: Optional[Dict[str, int]] = None
    retried: int = 0
    exhausted: bool = False

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StoredResult":
        stage_timings = data.get("stage_timings")
        cache_stats = data.get("cache_stats")
        return cls(
            key=data["key"],
            job_id=data["job_id"],
            circuit=data["circuit"],
            fingerprint=data["fingerprint"],
            config=dict(data["config"]),
            status=data["status"],
            summary=data.get("summary"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            stage_timings=dict(stage_timings) if stage_timings else None,
            cache_stats=dict(cache_stats) if cache_stats else None,
            retried=int(data.get("retried", 0)),
            exhausted=bool(data.get("exhausted", False)),
        )


class ResultStore:
    """Append-only, content-addressed store of campaign results.

    Appends go through one persistent file handle (opened lazily on the
    first :meth:`put`, flushed after every record, closed by :meth:`close`
    or the context-manager exit) instead of a reopen per record -- a
    campaign streaming hundreds of results pays one ``open`` total.  The
    handle is append-mode, so the torn-tail repair in :meth:`_load` (which
    truncates through a separate handle before any ``put``) is unaffected.

    The writer lock is acquired together with the append handle (or
    eagerly via :meth:`lock`), held for the store's lifetime and released
    by :meth:`close`.  ``read_only=True`` disables :meth:`put`, skips the
    lock entirely and also skips the on-disk tail repair -- corrupt
    trailing records are dropped from the in-memory index only, so
    inspecting a store never races its writer.
    """

    def __init__(self, root: "str | Path", read_only: bool = False):
        self._root = Path(root)
        self._read_only = read_only
        if not read_only:
            self._root.mkdir(parents=True, exist_ok=True)
        self._path = self._root / RESULTS_FILENAME
        self._index: Dict[str, StoredResult] = {}
        self._handle = None
        self._lock_handle = None
        self._load()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Flush the append handle and release the writer lock (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._lock_handle is not None:
            # Closing drops the flock; the lock file itself is left behind
            # as a harmless pid breadcrumb (flock, not file existence, is
            # the lock).
            self._lock_handle.close()
            self._lock_handle = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def path(self) -> Path:
        return self._path

    @property
    def read_only(self) -> bool:
        return self._read_only

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[StoredResult]:
        return iter(self._index.values())

    def get(self, key: str) -> Optional[StoredResult]:
        return self._index.get(key)

    def completed(self, key: str) -> bool:
        """True when the key has a successful (resumable) record."""
        record = self._index.get(key)
        return record is not None and record.ok

    def records(self) -> List[StoredResult]:
        """All current records (one per key, insertion order)."""
        return list(self._index.values())

    def rows(self) -> List[Dict[str, object]]:
        """The summary rows of every successful record."""
        return [
            dict(record.summary)
            for record in self._index.values()
            if record.ok and record.summary is not None
        ]

    # ------------------------------------------------------------------
    # Writer lock
    # ------------------------------------------------------------------
    def lock(self) -> None:
        """Acquire the advisory writer lock now (idempotent).

        Campaign runners call this up front so two campaigns sharing one
        store directory fail fast at start instead of mid-run on the first
        append.  Raises :class:`StoreLockedError` when another live
        process holds the lock; a lock left by a dead pid is taken over
        with a warning (fcntl locks die with their holder, so takeover is
        the kernel's default -- the warning just surfaces the crash).
        """
        if self._read_only:
            raise RuntimeError("cannot lock a read-only result store")
        if self._lock_handle is not None or fcntl is None:
            return
        lock_path = self._root / LOCK_FILENAME
        handle = open(lock_path, "a+", encoding="utf-8")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.seek(0)
            text = handle.read().strip()
            handle.close()
            holder: Optional[int] = None
            if text.isdigit():
                holder = int(text)
            raise StoreLockedError(self._path, holder) from None
        # Lock acquired.  A recorded pid that is no longer alive means the
        # previous writer crashed without closing -- surface the takeover.
        handle.seek(0)
        text = handle.read().strip()
        if text.isdigit() and int(text) != os.getpid() and not _pid_alive(int(text)):
            warnings.warn(
                f"taking over the writer lock of {self._path} from dead "
                f"process {text} (crashed writer)",
                RuntimeWarning,
                stacklevel=2,
            )
        handle.seek(0)
        handle.truncate()
        handle.write(f"{os.getpid()}\n")
        handle.flush()
        self._lock_handle = handle

    def writer_pid(self) -> Optional[int]:
        """Pid of the current live writer, or None when the store is free.

        Purely diagnostic: probes the flock without blocking and reads the
        recorded pid.  Works from read-only stores.
        """
        if fcntl is None:  # pragma: no cover - Windows
            return None
        if self._lock_handle is not None:
            return os.getpid()
        lock_path = self._root / LOCK_FILENAME
        if not lock_path.exists():
            return None
        with open(lock_path, "r", encoding="utf-8") as handle:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_SH | fcntl.LOCK_NB)
            except OSError:
                text = handle.read().strip()
                return int(text) if text.isdigit() else -1
            return None

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def put(self, record: StoredResult) -> None:
        """Append one record and update the index (last record wins)."""
        if self._read_only:
            raise RuntimeError(
                f"result store {self._path} was opened read-only"
            )
        if self._handle is None:
            self.lock()
            self._handle = self._path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        # Explicit flush: the record must be durable (and visible to
        # ``reload`` in this or another process) before put returns --
        # the crash-consistency contract is per record, not per close.
        self._handle.flush()
        self._index[record.key] = record

    def reload(self) -> None:
        """Re-read the store file (e.g. after another process appended).

        Closes the append handle (and releases the writer lock) first so
        the tail repair in :meth:`_load` never races a buffered append
        position.
        """
        self.close()
        self._index = {}
        self._load()

    def _load(self) -> None:
        """Build the index from the JSONL file.

        A crash mid-append -- or a torn page writeback after a hard kill
        -- leaves a *corrupt tail*: one or more damaged trailing lines
        (partial records, garbage bytes, half-flushed fragments).  Every
        record before the damage is intact, so the store is still
        perfectly usable: the corrupt suffix is dropped with a warning and
        the file is truncated back to the last complete record (otherwise
        the next append would concatenate onto the fragment and corrupt a
        *good* record).  If the damage is an interrupted append that got
        the whole final record out and lost only the newline, the record
        is kept and the newline restored.

        Corruption *followed by an intact record* is not a torn tail --
        appends cannot damage earlier lines, so an interior bad line means
        real file corruption, and dropping it would silently lose a good
        record.  That still fails loudly.

        Read-only stores apply the same tail semantics to the in-memory
        index but never write the repair back to disk.
        """
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        lines = raw.split(b"\n")
        good_end = 0  # byte offset just past the last intact line
        offset = 0
        corrupt: List[tuple] = []  # (line_number, error) of damaged lines
        for line_number, line in enumerate(lines, 1):
            line_end = offset + len(line) + 1  # +1 for the newline
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                offset = line_end
                if not line:
                    continue
                good_end = min(offset, len(raw))
                continue
            try:
                record = StoredResult.from_dict(json.loads(text))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                if not corrupt:
                    corrupt_start = good_end
                corrupt.append((line_number, error))
                offset = line_end
                continue
            if corrupt:
                # An intact record after a damaged line: interior
                # corruption, not a torn tail.
                line_number, error = corrupt[0]
                raise ValueError(
                    f"corrupt result store {self._path} at line "
                    f"{line_number}: {error}"
                )
            self._index[record.key] = record
            offset = line_end
            good_end = min(offset, len(raw))
        if corrupt:
            first_line, error = corrupt[0]
            warnings.warn(
                f"dropping {len(corrupt)} torn trailing line(s) of "
                f"{self._path} starting at line {first_line} (crash/append "
                f"damage: {error}); {len(self._index)} intact records kept",
                RuntimeWarning,
                stacklevel=2,
            )
            if not self._read_only:
                with self._path.open("r+b") as handle:
                    handle.truncate(corrupt_start)
            return
        if raw and not raw.endswith(b"\n") and not self._read_only:
            # The final record parsed, but its terminating newline was lost
            # (append interrupted between the record write and the newline
            # write).  Restore the boundary now, otherwise the next append
            # would concatenate onto this line and corrupt a good record.
            with self._path.open("ab") as handle:
                handle.write(b"\n")
