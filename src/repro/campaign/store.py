"""Content-addressed JSON-lines result store.

Every campaign job is identified by a *result key*: a stable hash of the
test-set fingerprint (:meth:`repro.testdata.test_set.TestSet.fingerprint`)
and the config cache key (:meth:`repro.config.CompressionConfig.cache_key`).
The store is an append-only ``results.jsonl`` file inside a store directory;
each line is one :class:`StoredResult` record.  Loading builds an in-memory
index keyed by result key with last-record-wins semantics, so re-running a
job simply supersedes the old record.

Because the key depends only on *content* (which cubes, which knobs), not on
job names or spec files, any two campaigns that touch the same
(test set, config) point share the cached result -- resume is free and so is
cross-campaign deduplication.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.config import CompressionConfig

RESULTS_FILENAME = "results.jsonl"

#: Status of a stored record.
STATUS_OK = "ok"
STATUS_ERROR = "error"


def result_key(fingerprint: str, config: CompressionConfig) -> str:
    """Stable content hash identifying one (test set, config) run."""
    payload = f"{fingerprint}:{config.cache_key()}"
    return hashlib.sha256(payload.encode("ascii")).hexdigest()[:20]


@dataclass
class StoredResult:
    """One persisted job outcome.

    ``stage_timings`` (stage name -> wall seconds) and ``cache_stats``
    (context-cache hit/miss counters) describe how the staged pipeline
    spent its time when the job was computed; both are ``None`` for records
    written before the staged runner existed (old stores stay loadable).
    """

    key: str
    job_id: str
    circuit: str
    fingerprint: str
    config: Dict[str, object]
    status: str
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    stage_timings: Optional[Dict[str, float]] = None
    cache_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StoredResult":
        stage_timings = data.get("stage_timings")
        cache_stats = data.get("cache_stats")
        return cls(
            key=data["key"],
            job_id=data["job_id"],
            circuit=data["circuit"],
            fingerprint=data["fingerprint"],
            config=dict(data["config"]),
            status=data["status"],
            summary=data.get("summary"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            stage_timings=dict(stage_timings) if stage_timings else None,
            cache_stats=dict(cache_stats) if cache_stats else None,
        )


class ResultStore:
    """Append-only, content-addressed store of campaign results.

    Appends go through one persistent file handle (opened lazily on the
    first :meth:`put`, flushed after every record, closed by :meth:`close`
    or the context-manager exit) instead of a reopen per record -- a
    campaign streaming hundreds of results pays one ``open`` total.  The
    handle is append-mode, so the torn-tail repair in :meth:`_load` (which
    truncates through a separate handle before any ``put``) is unaffected.
    """

    def __init__(self, root: "str | Path"):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._path = self._root / RESULTS_FILENAME
        self._index: Dict[str, StoredResult] = {}
        self._handle = None
        self._load()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close the append handle (safe to call repeatedly)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> Path:
        return self._root

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __iter__(self) -> Iterator[StoredResult]:
        return iter(self._index.values())

    def get(self, key: str) -> Optional[StoredResult]:
        return self._index.get(key)

    def completed(self, key: str) -> bool:
        """True when the key has a successful (resumable) record."""
        record = self._index.get(key)
        return record is not None and record.ok

    def records(self) -> List[StoredResult]:
        """All current records (one per key, insertion order)."""
        return list(self._index.values())

    def rows(self) -> List[Dict[str, object]]:
        """The summary rows of every successful record."""
        return [
            dict(record.summary)
            for record in self._index.values()
            if record.ok and record.summary is not None
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def put(self, record: StoredResult) -> None:
        """Append one record and update the index (last record wins)."""
        if self._handle is None:
            self._handle = self._path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        # Explicit flush: the record must be durable (and visible to
        # ``reload`` in this or another process) before put returns --
        # the crash-consistency contract is per record, not per close.
        self._handle.flush()
        self._index[record.key] = record

    def reload(self) -> None:
        """Re-read the store file (e.g. after another process appended).

        Closes the append handle first so the torn-tail repair in
        :meth:`_load` never races a buffered append position.
        """
        self.close()
        self._index = {}
        self._load()

    def _load(self) -> None:
        """Build the index from the JSONL file.

        A crash mid-append leaves a *torn* final line: a partial record with
        no trailing newline.  Every record before it is intact, so the store
        is still perfectly usable -- the torn fragment is dropped with a
        warning and the file is truncated back to the last complete record
        (otherwise the next append would concatenate onto the fragment and
        corrupt a *good* record).  If the interrupted append got the whole
        record out and lost only the newline, the record is kept and the
        newline restored.  Corruption anywhere else -- an interior line, or
        a complete (newline-terminated) line that does not parse -- is not
        a torn append and still fails loudly.
        """
        if not self._path.exists():
            return
        raw = self._path.read_bytes()
        lines = raw.split(b"\n")
        for line_number, line in enumerate(lines, 1):
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                record = StoredResult.from_dict(json.loads(text))
            except (json.JSONDecodeError, KeyError) as error:
                if line_number == len(lines):
                    warnings.warn(
                        f"dropping torn trailing line of {self._path} "
                        f"(interrupted append: {error}); "
                        f"{len(self._index)} intact records kept",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    with self._path.open("r+b") as handle:
                        handle.truncate(len(raw) - len(line))
                    return
                raise ValueError(
                    f"corrupt result store {self._path} at line "
                    f"{line_number}: {error}"
                ) from error
            self._index[record.key] = record
        if raw and not raw.endswith(b"\n"):
            # The final record parsed, but its terminating newline was lost
            # (append interrupted between the record write and the newline
            # write).  Restore the boundary now, otherwise the next append
            # would concatenate onto this line and corrupt a good record.
            with self._path.open("ab") as handle:
                handle.write(b"\n")
