"""Campaign orchestration: declarative sweeps, parallel execution, resume.

Every paper artifact (Tables 1-4, Fig. 4, the ablations) is a *grid* of
compression runs over circuits x (L, S, k) configurations.  This package
turns the single-shot :func:`repro.pipeline.compress` into an experiment
engine for such grids:

:mod:`repro.campaign.spec`
    :class:`CampaignSpec` -- a declarative cartesian grid over test-set
    sources and :class:`~repro.config.CompressionConfig` axes, loadable
    from TOML/JSON.

:mod:`repro.campaign.runner`
    :class:`CampaignRunner` -- a multiprocessing worker pool with per-job
    timeout, error capture and deterministic job ordering.

:mod:`repro.campaign.store`
    :class:`ResultStore` -- a content-addressed JSON-lines store keyed by
    ``(test-set fingerprint, config cache key)``; re-running a campaign
    against the same store skips completed jobs, so resume is free.

:mod:`repro.campaign.report`
    Aggregation of stored summaries into Fig. 4-style improvement grids
    and best-config-per-circuit tables.
"""

from repro.campaign.report import (
    best_config_rows,
    campaign_report,
    improvement_grids,
)
from repro.campaign.runner import CampaignResult, CampaignRunner, JobOutcome
from repro.campaign.spec import CampaignSpec, JobSpec, TestSource
from repro.campaign.store import ResultStore, StoredResult, result_key

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "TestSource",
    "CampaignRunner",
    "CampaignResult",
    "JobOutcome",
    "ResultStore",
    "StoredResult",
    "result_key",
    "best_config_rows",
    "campaign_report",
    "improvement_grids",
]
