"""Aggregation of stored campaign results into paper-style tables.

Works on plain summary rows (the :meth:`CompressionReport.summary` dicts
persisted by the store), so it can render a report from a live
:class:`~repro.campaign.runner.CampaignResult` or from a store directory
written weeks ago, without re-running anything.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.reporting import format_table, improvement_table, pivot_rows
from repro.telemetry import MetricsRegistry

SummaryRow = Dict[str, object]


def cache_hit_rate_lines(
    cache_stats: Mapping[str, float], indent: str = "  "
) -> List[str]:
    """Render aggregated context-cache counters as ``kind hits/total (rate)``.

    ``cache_stats`` is any summed counter mapping (e.g.
    :meth:`~repro.campaign.runner.CampaignResult.cache_stat_totals` or the
    totals accumulated from stored records); the ``*_hits`` / ``*_misses``
    pairing is resolved by the metrics registry, so the report and the
    telemetry summary agree on the derived rates.
    """
    registry = MetricsRegistry()
    registry.merge({"counters": dict(cache_stats)})
    return [
        f"{indent}{kind}: {int(hits)}/{int(total)} hits ({rate * 100:.1f}%)"
        for kind, (hits, total, rate) in registry.hit_rates().items()
    ]


def _by_circuit(rows: Iterable[SummaryRow]) -> Dict[str, List[SummaryRow]]:
    grouped: Dict[str, List[SummaryRow]] = {}
    for row in rows:
        grouped.setdefault(str(row["circuit"]), []).append(row)
    return grouped


def improvement_grids(
    rows: Iterable[SummaryRow],
    row_axis: str = "speedup",
    col_axis: str = "segment_size",
    value: str = "improvement_pct",
) -> Dict[str, Dict[object, Dict[object, object]]]:
    """Pivot summary rows into one Fig. 4-style grid per circuit.

    When several rows land on the same grid cell (e.g. a campaign that also
    swept an axis not shown here), the best improvement wins, matching how
    the paper reports its best configuration per point.
    """
    grids: Dict[str, Dict[object, Dict[object, object]]] = {}
    for circuit, circuit_rows in _by_circuit(rows).items():
        grid = pivot_rows(circuit_rows, row_axis, col_axis, value, reduce="max")
        if grid:
            grids[circuit] = grid
    return grids


def best_config_rows(
    rows: Iterable[SummaryRow],
    metric: str = "state_skip_tsl",
    minimize: bool = True,
) -> List[SummaryRow]:
    """The best row per circuit (shortest test sequence by default)."""
    best: List[SummaryRow] = []
    for circuit, circuit_rows in sorted(_by_circuit(rows).items()):
        scored = [row for row in circuit_rows if row.get(metric) is not None]
        if not scored:
            continue
        pick = min(scored, key=lambda row: row[metric])
        if not minimize:
            pick = max(scored, key=lambda row: row[metric])
        best.append(pick)
    return best


def best_config_table(
    rows: Iterable[SummaryRow],
    metric: str = "state_skip_tsl",
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render the best configuration per circuit as an aligned table."""
    best = best_config_rows(rows, metric=metric)
    if columns is None:
        columns = [
            "circuit",
            "window_length",
            "segment_size",
            "speedup",
            "num_seeds",
            "tdv_bits",
            "window_tsl",
            "state_skip_tsl",
            "improvement_pct",
            "hardware_ge",
        ]
    return format_table(
        best, columns=columns, title=f"Best configuration per circuit (min {metric})"
    )


def campaign_report(
    rows: Iterable[SummaryRow],
    title: str = "campaign",
    row_axis: str = "speedup",
    col_axis: str = "segment_size",
    cache_stats: Optional[Mapping[str, float]] = None,
) -> str:
    """Full text report: one improvement grid per circuit plus the best table.

    ``cache_stats`` (summed context-cache counters, e.g.
    :meth:`~repro.campaign.runner.CampaignResult.cache_stat_totals`) adds an
    aggregated cache hit-rate section, so the sharing the runner achieved
    survives into the report instead of vanishing with the job groups.
    """
    rows = list(rows)
    if not rows:
        return f"campaign {title}: no successful results\n"
    labels = {"speedup": "k", "segment_size": "S", "window_length": "L"}
    sections: List[str] = []
    grids = improvement_grids(rows, row_axis=row_axis, col_axis=col_axis)
    for circuit, grid in sorted(grids.items()):
        sections.append(
            improvement_table(
                f"{circuit} ({title})",
                grid,
                row_label=labels.get(row_axis, row_axis),
                column_label=labels.get(col_axis, col_axis),
            )
        )
    sections.append(best_config_table(rows))
    if cache_stats:
        rate_lines = cache_hit_rate_lines(cache_stats)
        if rate_lines:
            sections.append(
                "\n".join(["", "aggregated cache hit-rates:"] + rate_lines)
            )
    return "\n".join(sections)
