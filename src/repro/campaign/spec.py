"""Declarative campaign specifications.

A :class:`CampaignSpec` describes a grid of compression runs: a list of
test-set *sources* (calibrated benchmark profiles or cube files) crossed
with named *axes*, each axis sweeping one :class:`~repro.config.CompressionConfig`
field.  The cartesian expansion is deterministic -- sources in declaration
order, axis values in declaration order -- so job lists (and therefore
result stores) are stable across runs and machines.

Specs can be built in Python or loaded from a TOML/JSON file::

    name = "fig4-bars"

    [[sources]]
    profile = "s13207"
    scale = 0.2

    [base]
    window_length = 300

    [axes]
    speedup = [3, 6, 12, 24]
    segment_size = [4, 10, 12, 20]

An optional ``filter`` expression prunes combinations; it is evaluated
with the resolved config fields plus ``circuit`` in scope, e.g.
``filter = "segment_size <= window_length"``.
"""

from __future__ import annotations

import ast
import itertools
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import CompressionConfig
from repro.testdata.profiles import get_profile
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet

_CONFIG_FIELDS = {f.name for f in fields(CompressionConfig)}

#: AST nodes a filter expression may use: comparisons, boolean logic and
#: arithmetic over config fields and literals -- no calls, attributes,
#: subscripts or comprehensions, so spec files cannot execute code.
_FILTER_NODES = (
    ast.Expression,
    ast.BoolOp, ast.And, ast.Or,
    ast.UnaryOp, ast.Not, ast.USub, ast.UAdd,
    ast.Compare, ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE,
    ast.In, ast.NotIn, ast.Is, ast.IsNot,
    ast.BinOp, ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
    ast.Mod, ast.Pow,
    ast.Name, ast.Load, ast.Constant, ast.Tuple, ast.List,
)


def evaluate_filter(expression: str, scope: Mapping[str, object]) -> bool:
    """Safely evaluate a spec filter expression over config-field values.

    Only comparison/boolean/arithmetic syntax is allowed; anything else
    (calls, attribute access, subscripts) raises :class:`ValueError`, as
    does a reference to an unknown name.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as error:
        raise ValueError(f"invalid filter expression {expression!r}: {error}")
    for node in ast.walk(tree):
        if not isinstance(node, _FILTER_NODES):
            raise ValueError(
                f"filter expression {expression!r} uses disallowed syntax "
                f"({type(node).__name__}); only comparisons, boolean logic "
                f"and arithmetic over config fields are supported"
            )
    try:
        return bool(
            eval(compile(tree, "<filter>", "eval"), {"__builtins__": {}}, dict(scope))
        )
    except NameError as error:
        raise ValueError(
            f"filter expression {expression!r} references an unknown name: "
            f"{error}"
        ) from None


@dataclass(frozen=True)
class TestSource:
    """One test-set source of a campaign.

    Exactly one of ``profile`` (calibrated benchmark profile name) and
    ``tests`` (path to a 0/1/X cube file) must be set.  ``scale`` and
    ``seed`` parameterise the synthetic generator for profile sources.
    """

    #: Tell pytest this domain class is not a test-case class.
    __test__ = False

    profile: Optional[str] = None
    tests: Optional[str] = None
    scale: Optional[float] = None
    seed: int = 1

    def __post_init__(self):
        if (self.profile is None) == (self.tests is None):
            raise ValueError("a source needs exactly one of 'profile' or 'tests'")
        if self.profile is not None:
            get_profile(self.profile)  # fail fast on unknown names

    @property
    def label(self) -> str:
        """Short human-readable identity used in job ids."""
        if self.profile is not None:
            label = self.profile
            if self.scale is not None:
                label += f"@{self.scale:g}"
            if self.seed != 1:
                label += f"#{self.seed}"
            return label
        return Path(self.tests).stem

    def resolve(self) -> Tuple[TestSet, Optional[int]]:
        """Materialise the test set and its default LFSR size."""
        if self.profile is not None:
            profile = get_profile(self.profile)
            test_set = generate_test_set(profile, seed=self.seed, scale=self.scale)
            return test_set, profile.lfsr_size
        path = Path(self.tests)
        return TestSet.from_text(path.read_text(), name=path.stem), None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {}
        if self.profile is not None:
            data["profile"] = self.profile
            if self.scale is not None:
                data["scale"] = self.scale
            if self.seed != 1:
                data["seed"] = self.seed
        else:
            data["tests"] = self.tests
        return data


@dataclass(frozen=True)
class JobSpec:
    """One fully resolved point of a campaign grid."""

    job_id: str
    source: TestSource
    config: CompressionConfig
    axes: Mapping[str, object]


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative grid of compression runs.

    Attributes
    ----------
    name:
        Campaign name (also the default store subdirectory name).
    sources:
        Test-set sources; each is crossed with the full axis grid.
    base:
        Config defaults shared by every job; axis values override them.
    axes:
        Ordered mapping ``config field -> list of values``.  Every key
        must name a :class:`CompressionConfig` field.
    filter:
        Optional Python expression over the resolved config fields (plus
        ``circuit``); combinations where it evaluates falsy are dropped.
    verify:
        Whether jobs re-expand seeds and verify every embedding.
    """

    name: str
    sources: Tuple[TestSource, ...]
    base: CompressionConfig = field(default_factory=CompressionConfig)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    filter: Optional[str] = None
    verify: bool = True

    def __post_init__(self):
        if not self.sources:
            raise ValueError("a campaign needs at least one source")
        unknown = set(self.axes) - _CONFIG_FIELDS
        if unknown:
            raise ValueError(
                f"unknown config axes {sorted(unknown)}; "
                f"valid fields: {sorted(_CONFIG_FIELDS)}"
            )
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    def jobs(self) -> List[JobSpec]:
        """Deterministic cartesian expansion of the grid.

        Sources vary slowest, then axes in declaration order (last axis
        fastest) -- the natural reading order of the spec file.
        """
        axis_names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in axis_names))
        jobs: List[JobSpec] = []
        for source, combo in itertools.product(self.sources, list(combos)):
            overrides = dict(zip(axis_names, combo))
            if not self._passes_filter(source, overrides):
                continue
            config = self.base.with_updates(**overrides)
            suffix = ",".join(f"{name}={value}" for name, value in overrides.items())
            job_id = f"{source.label}:{suffix}" if suffix else source.label
            jobs.append(
                JobSpec(job_id=job_id, source=source, config=config, axes=overrides)
            )
        if not jobs:
            raise ValueError(f"campaign {self.name!r} expands to zero jobs")
        return jobs

    @property
    def num_jobs(self) -> int:
        return len(self.jobs())

    def _passes_filter(self, source: TestSource, overrides: Dict[str, object]) -> bool:
        if self.filter is None:
            return True
        scope = self.base.to_dict()
        scope.update(overrides)
        scope["circuit"] = source.label
        return evaluate_filter(self.filter, scope)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "sources": [source.to_dict() for source in self.sources],
            "base": self.base.to_dict(),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "verify": self.verify,
        }
        if self.filter is not None:
            data["filter"] = self.filter
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        sources = tuple(
            TestSource(**entry) for entry in data.get("sources", ())
        )
        base_data = dict(data.get("base", {}))
        unknown = set(base_data) - _CONFIG_FIELDS
        if unknown:
            # CompressionConfig.from_dict tolerates unknown keys for loading
            # old store records, but a spec typo must not silently run the
            # wrong experiment.
            raise ValueError(
                f"unknown [base] config keys {sorted(unknown)}; "
                f"valid fields: {sorted(_CONFIG_FIELDS)}"
            )
        base = CompressionConfig.from_dict(base_data)
        return cls(
            name=data.get("name", "campaign"),
            sources=sources,
            base=base,
            axes=dict(data.get("axes", {})),
            filter=data.get("filter"),
            verify=bool(data.get("verify", True)),
        )

    @classmethod
    def from_file(cls, path: "str | Path") -> "CampaignSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # Python < 3.11 without tomllib
                try:
                    import tomli as tomllib
                except ImportError:
                    raise RuntimeError(
                        "TOML specs need Python >= 3.11 (tomllib) or the "
                        "'tomli' package; use a .json spec instead"
                    ) from None
            data = tomllib.loads(path.read_text())
        elif path.suffix.lower() == ".json":
            data = json.loads(path.read_text())
        else:
            raise ValueError(
                f"unsupported spec format {path.suffix!r} (use .toml or .json)"
            )
        return cls.from_dict(data)
