"""Parallel campaign execution with resume and substrate sharing.

The :class:`CampaignRunner` expands a :class:`~repro.campaign.spec.CampaignSpec`
into jobs, skips every job whose result key already has a successful record
in the :class:`~repro.campaign.store.ResultStore` (resume), and executes the
rest -- inline for ``jobs=1``, on a ``multiprocessing`` pool otherwise.

Design notes
------------
* Each *source* (profile or cube file) is materialised exactly once in the
  parent process; workers receive the serialised cube text, so synthetic
  generation is never repeated per job and file sources need no re-read.
* Jobs are **grouped by encode key** -- (source, encode-relevant config
  fields; see :meth:`repro.config.CompressionConfig.encode_cache_key`) --
  and each group runs on one worker with a shared
  :class:`~repro.context.CompressionContext`.  The first job of a group
  builds the substrate (:class:`~repro.encoding.equations.EquationSystem`,
  phase shifter) and computes the seeds; every (S, k) grid neighbour in the
  group reuses both through the context cache and only pays for its own
  reduction.  When there are fewer groups than workers, the largest groups
  are split so no worker idles (each chunk re-encodes once -- on capacity
  that would otherwise sit unused).  Per-stage wall times and cache
  hit/miss counts are surfaced in each :class:`JobOutcome` and persisted
  with the stored record.
* Groups are submitted in deterministic spec order; workers **stream** each
  job's result back over a manager queue the moment it is computed, and
  only the parent appends to the store (guarded by the store's advisory
  writer lock, acquired up front so two campaigns sharing one store fail
  fast instead of interleaving), so an interrupted (or hung) campaign
  keeps everything finished so far.
* Per-job failures are captured as records (status ``error``) instead of
  aborting the campaign; when a job genuinely *hangs* (no result from any
  worker within the inactivity window), only the still-pending jobs are
  reported as ``timeout`` -- the group's already-streamed results survive
  -- and the workers are terminated so stragglers cannot outlive the
  campaign.
* Workers are **managed processes, one per chunk**, not an opaque
  ``multiprocessing.Pool``: the scheduler watches exit codes, so a worker
  that dies hard (SIGKILL, OOM, segfault) is detected precisely.  The
  crashed chunk's unfinished jobs are *requeued* on a respawned worker
  with bounded exponential backoff plus jitter; the job that was running
  when the worker died (the first unfinished one in chunk order) is the
  *suspected poison job* -- it is blamed, moved to the end of the requeued
  chunk so the never-attempted jobs run first, and given up on (a stored
  ``error`` record with ``exhausted=True``) only after ``max_retries``
  blames.  Jobs that merely sat queued behind a crash are never charged
  for it.  ``KeyboardInterrupt`` terminates the workers and propagates
  with everything already streamed safely in the store.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from queue import Empty
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.campaign.spec import CampaignSpec, JobSpec, TestSource
from repro.campaign.store import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    StoredResult,
    result_key,
)
from repro.config import CompressionConfig
from repro.context import CompressionContext, ContextStats
from repro.pipeline import compress
from repro.telemetry import Recorder, get_recorder, set_recorder, use_recorder
from repro.testdata.test_set import TestSet

#: Extra outcome states of a single campaign run (never persisted).
STATUS_CACHED = "cached"
STATUS_TIMEOUT = "timeout"


@dataclass
class JobOutcome:
    """What happened to one job during :meth:`CampaignRunner.run`.

    ``stage_timings`` maps pipeline stage names (``encode`` / ``reduce`` /
    ``hardware`` plus the context-internal ``substrate_build`` /
    ``expand_seeds``) to the wall seconds *this job* spent in them;
    ``cache_stats`` carries the context-cache hit/miss deltas of the job
    (e.g. ``substrate_hits``, ``encoding_misses``, ``window_hits``).  For a
    resumed (``cached``) outcome both are taken from the stored record, and
    ``elapsed_s`` is the stored record's original compute time -- not zero
    -- so aggregate timing reports stay honest on warm stores.

    ``retried`` counts the worker crashes this job survived before the
    recorded outcome (0 on an undisturbed run); ``exhausted`` marks an
    ``error`` outcome produced because the job was blamed for
    ``max_retries`` worker crashes and given up on.
    """

    job: JobSpec
    key: str
    status: str
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0
    stage_timings: Optional[Dict[str, float]] = None
    cache_stats: Optional[Dict[str, int]] = None
    retried: int = 0
    exhausted: bool = False

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)

    @property
    def cached(self) -> bool:
        return self.status == STATUS_CACHED


@dataclass
class CampaignResult:
    """Aggregate outcome of one runner invocation."""

    campaign: str
    outcomes: List[JobOutcome]

    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def num_cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def num_computed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == STATUS_OK)

    @property
    def num_failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def num_retried(self) -> int:
        """Jobs that survived at least one worker crash before finishing."""
        return sum(1 for outcome in self.outcomes if outcome.retried > 0)

    @property
    def total_retries(self) -> int:
        """Summed worker-crash retries across all jobs."""
        return sum(outcome.retried for outcome in self.outcomes)

    @property
    def all_cached(self) -> bool:
        """True when the run recomputed nothing (a fully warm store)."""
        return self.num_jobs > 0 and self.num_cached == self.num_jobs

    @property
    def total_elapsed_s(self) -> float:
        """Summed per-job compute seconds (cached jobs report their
        originally stored compute time)."""
        return sum(outcome.elapsed_s for outcome in self.outcomes)

    def rows(self) -> List[Dict[str, object]]:
        """Summary rows of every successful outcome, in job order."""
        return [
            dict(outcome.summary)
            for outcome in self.outcomes
            if outcome.ok and outcome.summary is not None
        ]

    def failures(self) -> List[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def stage_timing_totals(self) -> Dict[str, float]:
        """Summed per-stage wall seconds over every outcome that has them."""
        totals: Dict[str, float] = {}
        for outcome in self.outcomes:
            for stage, seconds in (outcome.stage_timings or {}).items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def cache_stat_totals(self) -> Dict[str, int]:
        """Summed context-cache hit/miss counters over every outcome."""
        totals: Dict[str, int] = {}
        for outcome in self.outcomes:
            for name, count in (outcome.cache_stats or {}).items():
                totals[name] = totals.get(name, 0) + int(count)
        return totals


def _job_error(index: int, error: str, elapsed_s: float = 0.0) -> Dict[str, object]:
    return {
        "index": index,
        "status": STATUS_ERROR,
        "summary": None,
        "error": error,
        "elapsed_s": elapsed_s,
        "stage_timings": None,
        "cache_stats": None,
    }


def _execute_group_payload(
    payload: Dict[str, object], queue=None, on_result=None
) -> List[Dict[str, object]]:
    """Run one encode-key group of jobs in a worker process.

    All jobs of the group share one :class:`CompressionContext`: the first
    job builds the substrate and computes the seeds, the grid neighbours
    hit the context caches and only run their own reduction.  Never raises:
    per-job errors are captured so one failing (S, k) point cannot take the
    group down.  Returns one result dict per job, tagged with the job's
    campaign index, its stage-timing and its cache-stat deltas; when
    ``queue`` is given (the pool path), every result is additionally
    **pushed onto it the moment it is computed**, so the parent can
    persist completed work even if a later job of the group hangs.
    ``on_result`` is the inline (jobs=1) equivalent: a callback invoked
    per result as it is computed, so a Ctrl-C mid-group still leaves the
    finished jobs persisted.

    The per-job ``timeout`` of the payload is enforced *here* as a group
    budget (``timeout * num_jobs``): once the budget is spent, the
    remaining jobs are reported as ``timeout`` without being started, so a
    slow group keeps its finished work.  A job that *starts* inside the
    budget but genuinely hangs is handled by the parent's inactivity
    window -- only the hung (and not-yet-started) jobs are lost.
    """
    results: List[Dict[str, object]] = []

    def emit(result: Dict[str, object]) -> None:
        results.append(result)
        if queue is not None:
            queue.put(result)
        if on_result is not None:
            on_result(result)

    # Telemetry wiring.  On the pool path (queue given) the worker gets its
    # own recorder and ships a per-job batch back inside each result dict;
    # inline (jobs=1, queue=None) the caller's installed recorder receives
    # the spans directly and nothing is shipped (absorbing a batch there
    # would double-count).  The context's stats are bound to the recorder's
    # registry, so cache counters and stage timings flow into the telemetry
    # stream with no extra plumbing.
    trace = bool(payload.get("trace"))
    ship_telemetry = trace and queue is not None
    if ship_telemetry:
        recorder = Recorder(run_id=str(payload.get("run_id", "")))
        set_recorder(recorder)
    else:
        recorder = get_recorder()
        trace = trace and recorder.enabled
    # The batch mark is taken *before* any payload-level telemetry (queue
    # wait, parse) so the first job's delta carries it home.
    mark = recorder.mark() if ship_telemetry else None
    if trace:
        queued_at = payload.get("queued_at")
        if queued_at is not None:
            recorder.observe(
                "campaign.queue_wait_s", max(0.0, time.time() - queued_at)
            )
    context = CompressionContext(
        stats=ContextStats(registry=recorder.metrics) if trace else None
    )
    try:
        test_set = TestSet.from_text(payload["test_text"], name=payload["circuit"])
    except Exception:
        error = traceback.format_exc(limit=8)
        for job in payload["jobs"]:
            emit(_job_error(job["index"], error))
        return results
    timeout = payload.get("timeout")
    budget = None if timeout is None else timeout * len(payload["jobs"])
    group_start = time.perf_counter()
    for job in payload["jobs"]:
        if budget is not None and time.perf_counter() - group_start >= budget:
            emit(
                {
                    "index": job["index"],
                    "status": STATUS_TIMEOUT,
                    "summary": None,
                    "error": (
                        f"not started: the group budget of {budget:.1f}s "
                        f"({len(payload['jobs'])} jobs x {timeout:.1f}s) was "
                        f"spent by earlier jobs; a resumed run retries it"
                    ),
                    "elapsed_s": 0.0,
                    "stage_timings": None,
                    "cache_stats": None,
                }
            )
            continue
        start = time.perf_counter()
        before = context.stats.snapshot()
        try:
            config = CompressionConfig.from_dict(job["config"])
            with recorder.span(
                "campaign.job",
                job_id=job["job_id"],
                circuit=payload["circuit"],
            ):
                report = compress(
                    test_set, config, verify=payload["verify"], context=context
                )
            delta = ContextStats.delta(before, context.stats.snapshot())
            result = {
                "index": job["index"],
                "status": STATUS_OK,
                "summary": report.summary(),
                "error": None,
                "elapsed_s": time.perf_counter() - start,
                "stage_timings": {
                    name[:-2]: seconds
                    for name, seconds in delta.items()
                    if name.endswith("_s")
                },
                "cache_stats": {
                    name: int(count)
                    for name, count in delta.items()
                    if not name.endswith("_s")
                },
            }
            if ship_telemetry:
                result["telemetry"] = recorder.collect(mark)
                mark = recorder.mark()
            emit(result)
        except Exception:
            result = _job_error(
                job["index"],
                traceback.format_exc(limit=8),
                elapsed_s=time.perf_counter() - start,
            )
            if ship_telemetry:
                result["telemetry"] = recorder.collect(mark)
                mark = recorder.mark()
            emit(result)
    return results


def _split_for_parallelism(
    payloads: List[Dict[str, object]], workers: int
) -> List[Dict[str, object]]:
    """Split encode-key groups until every worker has a chunk to run.

    A single-circuit (S, k) grid forms one group, which would serialise the
    whole campaign on one worker.  Splitting the largest chunk in half
    until there are at least ``workers`` chunks trades duplicate encodes
    (on workers that would otherwise idle) for wall-clock parallelism;
    within each chunk the substrate/encoding sharing is unchanged.  The
    split is deterministic and preserves job order within and across
    chunks.
    """
    chunks = list(payloads)
    while len(chunks) < workers:
        largest = max(range(len(chunks)), key=lambda i: len(chunks[i]["jobs"]))
        jobs = chunks[largest]["jobs"]
        if len(jobs) < 2:
            break
        half = (len(jobs) + 1) // 2
        chunks[largest : largest + 1] = [
            dict(chunks[largest], jobs=jobs[:half]),
            dict(chunks[largest], jobs=jobs[half:]),
        ]
    return chunks


def _pool_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS setups)
        return multiprocessing.get_context("spawn")


@dataclass
class _ActiveWorker:
    """One live worker process and the chunk it is executing."""

    process: multiprocessing.Process
    payload: Dict[str, object]


class CampaignRunner:
    """Execute a campaign spec against a result store.

    Parameters
    ----------
    spec:
        The campaign grid to run.
    store:
        Result store used both for resume (skip completed keys) and for
        persisting new outcomes.
    jobs:
        Worker-pool size; ``1`` runs everything inline in-process.
    timeout:
        Per-job wait bound in seconds (``None`` disables).  Jobs sharing an
        encoding run as one worker task, so a group of ``n`` jobs is
        allowed ``n * timeout`` seconds of budget; beyond it the worker
        reports the unstarted jobs as ``timeout`` itself.  Results are
        streamed per job, so even when a job genuinely *hangs* (the
        parent's inactivity window fires) only the hung and
        not-yet-finished jobs are reported as ``timeout`` and not stored
        -- a later run retries just those.
    resume:
        When True (default), jobs whose key already has a successful stored
        record are returned as cache hits without recomputation; their
        outcomes carry the stored record's original ``elapsed_s``,
        ``stage_timings`` and ``cache_stats``.
    max_retries:
        How many worker crashes a single job may be blamed for before it
        is given up on (an ``error`` record with ``exhausted=True``).  A
        crash blames the job the dead worker was running -- the first
        unfinished job of its chunk -- and requeues the chunk's remaining
        jobs on a respawned worker, never-attempted jobs first.  Bounds
        the total crash count of a campaign at ``(max_retries + 1) x
        num_jobs``.
    retry_backoff_s:
        Base delay before a crashed chunk is requeued; doubles per blame
        of the same job (capped at 30s) with up to 25% random jitter so
        co-crashing campaigns do not respawn in lockstep.
    recorder:
        A :class:`~repro.telemetry.Recorder` to collect campaign telemetry
        into (defaults to the process-wide active recorder).  When enabled,
        every worker runs with its own recorder and streams a per-job span
        /metric batch back inside the existing result dicts; the parent
        absorbs each batch in arrival order, so one recorder ends up with
        the full multi-process span tree.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        jobs: int = 1,
        timeout: Optional[float] = None,
        resume: bool = True,
        recorder=None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.5,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be at least 0")
        self._spec = spec
        self._store = store
        self._jobs = jobs
        self._timeout = timeout
        self._resume = resume
        self._max_retries = max_retries
        self._retry_backoff_s = retry_backoff_s
        self._recorder = recorder if recorder is not None else get_recorder()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, progress: Optional[Callable[[JobOutcome], None]] = None
    ) -> CampaignResult:
        """Run every job of the spec; returns outcomes in spec order.

        Completed results are appended to the store (and reported through
        ``progress``) as soon as each job group finishes, so an interrupted
        campaign keeps everything computed so far and the next resumed run
        picks up where it stopped.
        """
        job_specs = self._spec.jobs()
        resolved = self._resolve_sources(job_specs)
        outcomes: List[Optional[JobOutcome]] = [None] * len(job_specs)
        # index -> (job spec, result key, config dict, fingerprint) for
        # every non-cached job; ``finish`` persists from this.
        pending: Dict[int, Tuple[JobSpec, str, Dict[str, object], str]] = {}
        # Encode-key groups in first-seen (spec) order.
        groups: "OrderedDict[Tuple[TestSource, str], Dict[str, object]]" = (
            OrderedDict()
        )

        for index, job in enumerate(job_specs):
            test_text, fingerprint, lfsr_default = resolved[job.source]
            config = job.config
            if config.lfsr_size is None and lfsr_default is not None:
                config = config.with_updates(lfsr_size=lfsr_default)
            key = result_key(fingerprint, config)
            if self._resume and self._store.completed(key):
                record = self._store.get(key)
                outcome = JobOutcome(
                    job=job,
                    key=key,
                    status=STATUS_CACHED,
                    summary=record.summary,
                    elapsed_s=record.elapsed_s,
                    stage_timings=record.stage_timings,
                    cache_stats=record.cache_stats,
                )
                outcomes[index] = outcome
                if progress is not None:
                    progress(outcome)
                continue
            pending[index] = (job, key, config.to_dict(), fingerprint)
            group_key = (job.source, config.encode_cache_key())
            group = groups.get(group_key)
            if group is None:
                group = {
                    "circuit": job.source.label,
                    "test_text": test_text,
                    "fingerprint": fingerprint,
                    "verify": self._spec.verify,
                    "timeout": self._timeout,
                    "trace": self._recorder.enabled,
                    "run_id": self._recorder.run_id,
                    "queued_at": time.time(),
                    "jobs": [],
                }
                groups[group_key] = group
            group["jobs"].append(
                {"index": index, "job_id": job.job_id, "config": config.to_dict()}
            )

        def finish(result: Dict[str, object]) -> None:
            if self._recorder.enabled:
                self._recorder.absorb(result.get("telemetry"))
            index = result["index"]
            job, key, config_dict, fingerprint = pending[index]
            outcome = JobOutcome(
                job=job,
                key=key,
                status=result["status"],
                summary=result["summary"],
                error=result["error"],
                elapsed_s=result["elapsed_s"],
                stage_timings=result.get("stage_timings"),
                cache_stats=result.get("cache_stats"),
                retried=int(result.get("retried", 0)),
                exhausted=bool(result.get("exhausted", False)),
            )
            outcomes[index] = outcome
            if outcome.status in (STATUS_OK, STATUS_ERROR):
                self._store.put(
                    StoredResult(
                        key=key,
                        job_id=job.job_id,
                        circuit=job.source.label,
                        fingerprint=fingerprint,
                        config=config_dict,
                        status=outcome.status,
                        summary=outcome.summary,
                        error=outcome.error,
                        elapsed_s=outcome.elapsed_s,
                        stage_timings=outcome.stage_timings,
                        cache_stats=outcome.cache_stats,
                        retried=outcome.retried,
                        exhausted=outcome.exhausted,
                    )
                )
            if progress is not None:
                progress(outcome)

        payloads = list(groups.values())
        if payloads:
            # Fail fast if another live campaign is writing this store --
            # before any work is spent, not on the first append.
            self._store.lock()
            recorder = self._recorder
            with recorder.span(
                "campaign.run",
                campaign=self._spec.name,
                jobs=len(job_specs),
                pending=len(pending),
            ):
                if recorder.enabled:
                    recorder.counter(
                        "campaign.jobs_cached", len(job_specs) - len(pending)
                    )
                if self._jobs == 1:
                    if recorder.enabled:
                        recorder.gauge("campaign.workers", 1)
                    # Inline execution records into this recorder directly
                    # (install it so the worker body's get_recorder() sees
                    # it even when the caller never set a global one).
                    with use_recorder(recorder):
                        for payload in payloads:
                            # Stream per job (on_result) so an interrupt
                            # mid-group keeps the finished jobs persisted.
                            _execute_group_payload(payload, on_result=finish)
                else:
                    chunks = _split_for_parallelism(payloads, self._jobs)
                    if recorder.enabled:
                        # After splitting: the split exists precisely so
                        # every worker has a chunk.
                        recorder.gauge(
                            "campaign.workers", min(self._jobs, len(chunks))
                        )
                    self._run_pool(chunks, finish)
        return CampaignResult(campaign=self._spec.name, outcomes=outcomes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_sources(
        self, job_specs: List[JobSpec]
    ) -> Dict[TestSource, Tuple[str, str, Optional[int]]]:
        """Materialise each distinct source once: (text, fingerprint, lfsr)."""
        resolved: Dict[TestSource, Tuple[str, str, Optional[int]]] = {}
        for job in job_specs:
            if job.source in resolved:
                continue
            test_set, lfsr_default = job.source.resolve()
            resolved[job.source] = (
                test_set.to_text(),
                test_set.fingerprint(),
                lfsr_default,
            )
        return resolved

    #: Queue poll period of the streaming collector (seconds); bounds how
    #: long a worker-crash diagnosis can lag behind the worker's exit.
    _POLL_S = 0.25
    #: Ceiling on the exponential crash-retry backoff.
    _BACKOFF_CAP_S = 30.0

    def _run_pool(
        self,
        payloads: List[Dict[str, object]],
        finish: Callable[[Dict[str, object]], None],
    ) -> None:
        """Schedule every chunk on managed worker processes, with retries.

        One worker process per chunk, at most ``jobs`` alive at a time;
        workers push each job's result onto a manager queue the moment it
        is computed, so completed work is persisted immediately.  A worker
        that exits with unfinished jobs *crashed* (SIGKILL, OOM, segfault
        -- the worker body never raises): the first unfinished job in
        chunk order is the one it was running and takes the blame; the
        chunk's unfinished jobs are requeued on a fresh worker after an
        exponential backoff, blamed job last, and a job blamed
        ``max_retries`` times is recorded as ``error``/``exhausted``
        instead of being requeued.  When no result arrives from *any*
        worker within the inactivity window (per-job timeout x (largest
        remaining group + 1) -- a bound on how long a healthy worker can
        legitimately stay silent), the still-pending jobs are reported as
        ``timeout`` and the workers are terminated: a genuinely hung job
        loses only itself and the jobs queued behind it, never the
        results streamed before the hang.
        """
        context = _pool_context()
        manager = multiprocessing.Manager()
        queue = manager.Queue()
        remaining: Set[int] = {
            job["index"] for payload in payloads for job in payload["jobs"]
        }
        retries: Dict[int, int] = {}
        jitter = random.Random()  # scheduling jitter only, never results
        work: List[Dict[str, object]] = [
            {"payload": payload, "not_before": 0.0} for payload in payloads
        ]
        active: List[_ActiveWorker] = []
        hang_declared = False
        last_activity = time.monotonic()

        def launch_ready() -> None:
            nonlocal last_activity
            slot = 0
            while slot < len(work) and len(active) < self._jobs:
                if work[slot]["not_before"] > time.monotonic():
                    slot += 1  # still backing off; look at the next chunk
                    continue
                entry = work.pop(slot)
                process = context.Process(
                    target=_execute_group_payload,
                    args=(entry["payload"], queue),
                    daemon=True,
                )
                process.start()
                active.append(
                    _ActiveWorker(process=process, payload=entry["payload"])
                )
                last_activity = time.monotonic()

        def drain(block_s: float) -> None:
            """Apply every queued result (waiting up to ``block_s`` for
            the first); crash-raced duplicates of already-finished indexes
            are ignored."""
            nonlocal last_activity
            timeout = block_s
            while True:
                try:
                    result = (
                        queue.get(timeout=timeout)
                        if timeout > 0
                        else queue.get_nowait()
                    )
                except Empty:
                    return
                timeout = 0.0  # after the first, only sweep what is ready
                last_activity = time.monotonic()
                index = result["index"]
                if index in remaining:
                    remaining.discard(index)
                    result.setdefault("retried", retries.get(index, 0))
                    finish(result)

        try:
            while remaining and (work or active):
                launch_ready()
                drain(self._POLL_S)
                for worker in list(active):
                    if worker.process.is_alive():
                        continue
                    worker.process.join()
                    active.remove(worker)
                    # A finished put lands in the manager *before* the
                    # worker moves on, so once the process is gone a final
                    # sweep sees everything it completed.
                    drain(0.0)
                    unfinished = [
                        job
                        for job in worker.payload["jobs"]
                        if job["index"] in remaining
                    ]
                    if not unfinished:
                        continue  # clean exit, chunk fully reported
                    self._handle_worker_crash(
                        worker, unfinished, retries, remaining, work,
                        jitter, finish,
                    )
                    last_activity = time.monotonic()
                if remaining and active:
                    window = self._inactivity_window(
                        [worker.payload for worker in active]
                        + [entry["payload"] for entry in work],
                        remaining,
                    )
                    if (
                        window is not None
                        and time.monotonic() - last_activity >= window
                    ):
                        hang_declared = True
                        for index in sorted(remaining):
                            remaining.discard(index)
                            finish(
                                {
                                    "index": index,
                                    "status": STATUS_TIMEOUT,
                                    "summary": None,
                                    "error": (
                                        f"no result arrived from any worker "
                                        f"within {window:.1f}s (per-job "
                                        f"timeout {self._timeout:.1f}s x "
                                        f"largest pending group's size + "
                                        f"grace); a job is hanging -- "
                                        f"results streamed before the hang "
                                        f"were kept"
                                    ),
                                    "elapsed_s": self._timeout,
                                    "stage_timings": None,
                                    "cache_stats": None,
                                }
                            )
                        break
            # Defensive: the loop above always requeues or reports every
            # job, so anything left here means the scheduler lost a chunk.
            for index in sorted(remaining):
                finish(
                    _job_error(
                        index,
                        "never attempted: the worker pool was lost before "
                        "this job started",
                    )
                )
        finally:
            for worker in active:
                if hang_declared or remaining:
                    worker.process.terminate()
                worker.process.join()
            manager.shutdown()

    def _handle_worker_crash(
        self,
        worker: "_ActiveWorker",
        unfinished: List[Dict[str, object]],
        retries: Dict[int, int],
        remaining: Set[int],
        work: List[Dict[str, object]],
        jitter: random.Random,
        finish: Callable[[Dict[str, object]], None],
    ) -> None:
        """Blame, requeue or exhaust the jobs of a crashed worker."""
        exitcode = worker.process.exitcode
        if self._recorder.enabled:
            self._recorder.counter("campaign.worker_crashes")
        blamed = unfinished[0]
        queued_behind = unfinished[1:]
        index = blamed["index"]
        attempt = retries.get(index, 0) + 1
        retries[index] = attempt
        requeue = list(queued_behind)  # never-attempted jobs go first
        if attempt > self._max_retries:
            remaining.discard(index)
            finish(
                {
                    "index": index,
                    "status": STATUS_ERROR,
                    "summary": None,
                    "error": (
                        f"worker crashed (exit code {exitcode}) while "
                        f"running this job; giving up after "
                        f"{attempt} crash(es) (max_retries="
                        f"{self._max_retries}).  The {len(queued_behind)} "
                        f"job(s) queued behind it were never attempted and "
                        f"were requeued, not failed."
                    ),
                    "elapsed_s": 0.0,
                    "stage_timings": None,
                    "cache_stats": None,
                    "retried": attempt - 1,
                    "exhausted": True,
                }
            )
        else:
            if self._recorder.enabled:
                self._recorder.counter("campaign.job_retries")
            # The suspected poison job runs last so the jobs that merely
            # sat behind the crash are not held hostage by a repeat crash.
            requeue.append(blamed)
        if requeue:
            delay = min(
                self._BACKOFF_CAP_S,
                self._retry_backoff_s * (2 ** (attempt - 1)),
            )
            delay *= 1.0 + 0.25 * jitter.random()
            work.append(
                {
                    "payload": dict(worker.payload, jobs=requeue),
                    "not_before": time.monotonic() + delay,
                }
            )

    def _inactivity_window(
        self, payloads: List[Dict[str, object]], remaining: Set[int]
    ) -> Optional[float]:
        """Longest silence a healthy pool may show before a hang is declared.

        ``None`` (no per-job timeout) waits forever.  Otherwise the bound
        is the *full* group budget (plus one job of grace) of the largest
        group that still has pending jobs -- a single job may legitimately
        run silent for nearly the whole budget of its group, because the
        worker only checks the budget *between* jobs.  This matches the
        tolerance of the pre-streaming per-group hard wait
        (``timeout * (group size + 1)``); streaming only changes what a
        hang costs, not when one is declared.
        """
        if self._timeout is None:
            return None
        largest = max(
            (
                len(payload["jobs"])
                for payload in payloads
                if any(job["index"] in remaining for job in payload["jobs"])
            ),
            default=0,
        )
        return self._timeout * (largest + 1)

