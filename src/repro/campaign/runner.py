"""Parallel campaign execution with resume.

The :class:`CampaignRunner` expands a :class:`~repro.campaign.spec.CampaignSpec`
into jobs, skips every job whose result key already has a successful record
in the :class:`~repro.campaign.store.ResultStore` (resume), and executes the
rest -- inline for ``jobs=1``, on a ``multiprocessing`` pool otherwise.

Design notes
------------
* Each *source* (profile or cube file) is materialised exactly once in the
  parent process; workers receive the serialised cube text, so synthetic
  generation is never repeated per job and file sources need no re-read.
* Jobs are submitted and collected in deterministic spec order; the store
  is appended only by the parent, so no file locking is needed.
* Per-job failures are captured as records (status ``error``) instead of
  aborting the campaign; a timed-out job is reported (status ``timeout``)
  and the pool is terminated at the end so stragglers cannot outlive the
  campaign.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec, JobSpec, TestSource
from repro.campaign.store import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    StoredResult,
    result_key,
)
from repro.config import CompressionConfig
from repro.pipeline import compress
from repro.testdata.test_set import TestSet

#: Extra outcome states of a single campaign run (never persisted).
STATUS_CACHED = "cached"
STATUS_TIMEOUT = "timeout"


@dataclass
class JobOutcome:
    """What happened to one job during :meth:`CampaignRunner.run`."""

    job: JobSpec
    key: str
    status: str
    summary: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in (STATUS_OK, STATUS_CACHED)

    @property
    def cached(self) -> bool:
        return self.status == STATUS_CACHED


@dataclass
class CampaignResult:
    """Aggregate outcome of one runner invocation."""

    campaign: str
    outcomes: List[JobOutcome]

    @property
    def num_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def num_cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def num_computed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == STATUS_OK)

    @property
    def num_failed(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.ok)

    @property
    def all_cached(self) -> bool:
        """True when the run recomputed nothing (a fully warm store)."""
        return self.num_jobs > 0 and self.num_cached == self.num_jobs

    def rows(self) -> List[Dict[str, object]]:
        """Summary rows of every successful outcome, in job order."""
        return [
            dict(outcome.summary)
            for outcome in self.outcomes
            if outcome.ok and outcome.summary is not None
        ]

    def failures(self) -> List[JobOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]


def _execute_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one job in a worker process.  Never raises: errors are captured."""
    start = time.perf_counter()
    try:
        test_set = TestSet.from_text(
            payload["test_text"], name=payload["circuit"]
        )
        config = CompressionConfig.from_dict(payload["config"])
        report = compress(test_set, config, verify=payload["verify"])
        return {
            "job_id": payload["job_id"],
            "status": STATUS_OK,
            "summary": report.summary(),
            "error": None,
            "elapsed_s": time.perf_counter() - start,
        }
    except Exception:
        return {
            "job_id": payload["job_id"],
            "status": STATUS_ERROR,
            "summary": None,
            "error": traceback.format_exc(limit=8),
            "elapsed_s": time.perf_counter() - start,
        }


def _pool_context() -> multiprocessing.context.BaseContext:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork (Windows, some macOS setups)
        return multiprocessing.get_context("spawn")


class CampaignRunner:
    """Execute a campaign spec against a result store.

    Parameters
    ----------
    spec:
        The campaign grid to run.
    store:
        Result store used both for resume (skip completed keys) and for
        persisting new outcomes.
    jobs:
        Worker-pool size; ``1`` runs everything inline in-process.
    timeout:
        Per-job wait bound in seconds (``None`` disables).  A job that
        exceeds it is reported with status ``timeout`` and not stored, so a
        later run retries it.
    resume:
        When True (default), jobs whose key already has a successful stored
        record are returned as cache hits without recomputation.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        jobs: int = 1,
        timeout: Optional[float] = None,
        resume: bool = True,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self._spec = spec
        self._store = store
        self._jobs = jobs
        self._timeout = timeout
        self._resume = resume

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, progress: Optional[Callable[[JobOutcome], None]] = None
    ) -> CampaignResult:
        """Run every job of the spec; returns outcomes in spec order.

        Completed results are appended to the store (and reported through
        ``progress``) as soon as each job finishes, so an interrupted
        campaign keeps everything computed so far and the next resumed run
        picks up where it stopped.
        """
        job_specs = self._spec.jobs()
        resolved = self._resolve_sources(job_specs)
        prepared: List[Tuple[int, JobSpec, str, Dict[str, object]]] = []
        outcomes: List[Optional[JobOutcome]] = [None] * len(job_specs)

        for index, job in enumerate(job_specs):
            test_text, fingerprint, lfsr_default = resolved[job.source]
            config = job.config
            if config.lfsr_size is None and lfsr_default is not None:
                config = config.with_updates(lfsr_size=lfsr_default)
            key = result_key(fingerprint, config)
            if self._resume and self._store.completed(key):
                record = self._store.get(key)
                outcome = JobOutcome(
                    job=job,
                    key=key,
                    status=STATUS_CACHED,
                    summary=record.summary,
                    elapsed_s=0.0,
                )
                outcomes[index] = outcome
                if progress is not None:
                    progress(outcome)
                continue
            payload = {
                "job_id": job.job_id,
                "circuit": job.source.label,
                "test_text": test_text,
                "fingerprint": fingerprint,
                "config": config.to_dict(),
                "verify": self._spec.verify,
            }
            prepared.append((index, job, key, payload))

        def finish(index, job, key, payload, result) -> None:
            outcome = JobOutcome(
                job=job,
                key=key,
                status=result["status"],
                summary=result["summary"],
                error=result["error"],
                elapsed_s=result["elapsed_s"],
            )
            outcomes[index] = outcome
            if outcome.status in (STATUS_OK, STATUS_ERROR):
                self._store.put(
                    StoredResult(
                        key=key,
                        job_id=job.job_id,
                        circuit=job.source.label,
                        fingerprint=payload["fingerprint"],
                        config=payload["config"],
                        status=outcome.status,
                        summary=outcome.summary,
                        error=outcome.error,
                        elapsed_s=outcome.elapsed_s,
                    )
                )
            if progress is not None:
                progress(outcome)

        if prepared:
            if self._jobs == 1:
                for index, job, key, payload in prepared:
                    finish(index, job, key, payload, _execute_payload(payload))
            else:
                self._run_pool(prepared, finish)
        return CampaignResult(campaign=self._spec.name, outcomes=outcomes)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_sources(
        self, job_specs: List[JobSpec]
    ) -> Dict[TestSource, Tuple[str, str, Optional[int]]]:
        """Materialise each distinct source once: (text, fingerprint, lfsr)."""
        resolved: Dict[TestSource, Tuple[str, str, Optional[int]]] = {}
        for job in job_specs:
            if job.source in resolved:
                continue
            test_set, lfsr_default = job.source.resolve()
            resolved[job.source] = (
                test_set.to_text(),
                test_set.fingerprint(),
                lfsr_default,
            )
        return resolved

    def _run_pool(
        self,
        prepared: List[Tuple[int, JobSpec, str, Dict[str, object]]],
        finish: Callable[..., None],
    ) -> None:
        """Submit every payload and hand results to ``finish`` as they land."""
        context = _pool_context()
        pool = context.Pool(processes=min(self._jobs, len(prepared)))
        timed_out = False
        try:
            handles = [
                pool.apply_async(_execute_payload, (payload,))
                for _, _, _, payload in prepared
            ]
            for (index, job, key, payload), handle in zip(prepared, handles):
                try:
                    result = handle.get(timeout=self._timeout)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    result = {
                        "job_id": job.job_id,
                        "status": STATUS_TIMEOUT,
                        "summary": None,
                        "error": (
                            f"job exceeded the per-job timeout of "
                            f"{self._timeout:.1f}s"
                        ),
                        "elapsed_s": self._timeout,
                    }
                finish(index, job, key, payload, result)
        finally:
            if timed_out:
                pool.terminate()  # don't let stragglers outlive the campaign
            else:
                pool.close()
            pool.join()
