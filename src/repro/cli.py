"""Command-line interface of the State Skip LFSR flow.

The sub-commands cover the day-to-day uses of the library without writing
Python:

``compress``
    Compress a test set (a ``.tests`` text file of 0/1/X cube strings, or a
    calibrated benchmark profile) and print the figures of merit.

``sweep``
    Sweep the speedup factor ``k`` and segment size ``S`` for one test set
    and print the Fig. 4-style TSL-improvement grid (single process; the
    staged pipeline encodes once and reuses the cached seed windows for
    every reduction).

``campaign``
    Run a full experiment grid -- many circuits x (L, S, k) configs -- on a
    multiprocessing worker pool with a persistent, content-addressed result
    store.  Jobs sharing an encoding are grouped onto one worker with a
    shared CompressionContext (the substrate and the seeds are computed
    once per group); per-stage timings and context-cache hit counts are
    printed after the run.  Re-running with ``--resume`` skips every
    already-completed job.  Workers that die hard (SIGKILL, OOM) are
    respawned and their unfinished jobs retried with backoff (bounded by
    ``--max-retries``); Ctrl-C terminates the pool, keeps everything
    already streamed into the store and exits 130.

``fuzz``
    Differentially fuzz every interchangeable engine pair (packed vs dict
    simulation, event-driven vs full-pass PODEM, batched vs per-pattern
    fault dropping, batched vs sequential scan solving, numpy vs
    reference embedding, batched vs per-clock decompressor replay) with
    seeded random netlists/test sets/configs until ``--time-budget`` is
    spent.  Any divergence is delta-debugged down to a minimal case and
    written as a self-contained repro directory (``--replay`` re-runs
    one).  ``--chaos`` adds fault injection: SIGKILLed campaign workers
    and corrupted store tails, asserting nothing is ever lost.
    ``--verify-codegen`` AST-verifies every generated evaluator of the
    compiled backend before it is ``exec()``-ed.

``lint``
    Run the static verification subsystem (:mod:`repro.staticcheck`) over
    ``src/`` and ``tests/``: IR/codegen verifiers, repo-specific AST lint
    rules and concurrency-hazard checks.  One ``path:line: rule-id
    message`` per violation; exits 0 clean, 1 on violations, 2 on an
    analyzer internal error.  ``--rules`` selects a subset,
    ``--format=json`` emits a machine-readable report, ``--fix-hints``
    appends the per-rule remediation hint.

``atpg``
    Run the built-in PODEM ATPG on a ``.bench`` netlist (or on a generated
    random circuit) and write the resulting test-cube file.  ``--engine``
    selects the backend from the engine registry (``reference``,
    ``packed``, ``events`` -- the default -- or ``compiled``); every
    engine produces identical cubes, so the slower ones exist for
    cross-checks.  ``--reference`` and ``--no-events`` are kept as
    deprecated aliases.

``bench``
    Benchmark the hot kernels (encoding solvability scan, parallel-pattern
    fault simulation, PODEM on the packed ternary core, the event-driven
    PODEM increment, warm-sweep embedding matching, context encode-reuse,
    the disabled-telemetry overhead gate), write the ``BENCH_*.json``
    reports, and optionally fail on a regression against a committed
    baseline directory.

``stats``
    Aggregate the telemetry persisted by ``--trace`` runs (and the result
    store itself) from a store directory: span wall-time rollup, counters,
    cache hit-rates and histogram digests across every recorded run.

``compress``, ``campaign`` and ``atpg`` accept ``--trace``: the run is
recorded by the telemetry subsystem (hierarchical spans, metrics, event
log), a summary table is printed, and a Chrome-trace JSON (loadable in
Perfetto / ``chrome://tracing``) plus a JSONL event log are written --
next to the campaign results for ``campaign``, under ``--trace-dir``
otherwise.

Examples
--------
::

    python -m repro compress --profile s13207 --scale 0.1 -L 100 -S 10 -k 12
    python -m repro compress --tests my_core.tests --chains 16 -L 60 -k 8
    python -m repro compress --profile s9234 --profile-stats compress.pstats
    python -m repro sweep --profile s9234 --scale 0.1 -L 100
    python -m repro campaign --profiles s13207 s9234 --scale 0.1 \\
        --windows 50 100 --segments 4 10 --speedups 3 6 12 24 \\
        --jobs 4 --store results/campaign --resume --report
    python -m repro campaign --spec fig4.toml --jobs 8 --resume
    python -m repro campaign --profiles s13207 --jobs 4 --trace \\
        --store results/campaign
    python -m repro stats results/campaign
    python -m repro atpg --bench my_core.bench --output my_core.tests
    python -m repro bench --quick --out results --baseline results
    python -m repro fuzz --time-budget 60 --seed 0
    python -m repro fuzz --chaos --checks chaos-worker-kill
    python -m repro fuzz --replay results/fuzz/repro-ternary-sim-1234
    python -m repro lint
    python -m repro lint --rules bounded-cache,worker-shared-state --fix-hints
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import List, Optional

from repro.config import CompressionConfig
from repro.pipeline import compress
from repro.reporting import format_table, improvement_table
from repro.testdata.literature import tsl_improvement
from repro.testdata.profiles import get_profile, profile_names
from repro.testdata.synthetic import generate_test_set
from repro.testdata.test_set import TestSet


def _load_test_set(args: argparse.Namespace) -> TestSet:
    """Resolve the test set from either --tests or --profile."""
    if args.tests:
        path = Path(args.tests)
        return TestSet.from_text(path.read_text(), name=path.stem)
    if args.profile:
        profile = get_profile(args.profile)
        return generate_test_set(profile, seed=args.seed, scale=args.scale)
    raise SystemExit("either --tests or --profile is required")


def _engine_choices():
    from repro.circuits.backends import backend_names

    return backend_names()


def _config_from_args(args: argparse.Namespace, test_set: TestSet) -> CompressionConfig:
    lfsr_size = args.lfsr
    if lfsr_size is None and args.profile:
        lfsr_size = get_profile(args.profile).lfsr_size
    return CompressionConfig(
        window_length=args.window,
        segment_size=min(args.segment, args.window),
        speedup=args.speedup,
        num_scan_chains=args.chains,
        lfsr_size=lfsr_size,
        engine=getattr(args, "engine", None),
    )


def _add_trace_options(parser: argparse.ArgumentParser,
                       trace_dir: Optional[str] = None) -> None:
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--trace", action="store_true",
        help="record telemetry (spans, counters, histograms, events); "
             "prints a summary table and writes a Chrome-trace JSON plus "
             "a JSONL event log",
    )
    if trace_dir is not None:
        group.add_argument(
            "--trace-dir", default=trace_dir, metavar="DIR",
            help="directory for the telemetry files written by --trace "
                 f"(default {trace_dir})",
        )


def _emit_telemetry(recorder, directory, title: str) -> None:
    """Print the summary table and persist the trace + event log."""
    from repro.telemetry import environment_meta, persist_recorder, summary_table

    print()
    print(summary_table(recorder, title=title))
    if directory:
        paths = persist_recorder(directory, recorder, meta=environment_meta())
        print(f"\ntelemetry written: {paths['trace']}")
        print(f"                   {paths['events']}")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    source = parser.add_argument_group("test-set source")
    source.add_argument("--tests", help="path to a 0/1/X cube file (one cube per line)")
    source.add_argument(
        "--profile", choices=profile_names(), help="calibrated benchmark profile"
    )
    source.add_argument("--scale", type=float, default=0.1,
                        help="cube-count scale for --profile (default 0.1)")
    source.add_argument("--seed", type=int, default=1, help="generator RNG seed")
    hw = parser.add_argument_group("decompressor parameters")
    hw.add_argument("-L", "--window", type=int, default=100, help="window length L")
    hw.add_argument("-S", "--segment", type=int, default=10, help="segment size S")
    hw.add_argument("-k", "--speedup", type=int, default=12, help="State Skip speedup k")
    hw.add_argument("--chains", type=int, default=32, help="number of scan chains")
    hw.add_argument("--lfsr", type=int, default=None, help="LFSR size (default: auto)")
    hw.add_argument(
        "--engine", choices=_engine_choices(), default=None,
        help="simulation engine backend wherever the pipeline simulates "
             "circuits or replays the decompressor (default: REPRO_ENGINE "
             "or 'events'; all engines are bit-identical)",
    )


def _cmd_compress(args: argparse.Namespace) -> int:
    try:
        if args.trace:
            from repro.telemetry import Recorder, use_recorder

            recorder = Recorder()
            with use_recorder(recorder):
                status = _run_compress(args)
            _emit_telemetry(recorder, args.trace_dir, "compress telemetry")
            return status
        return _run_compress(args)
    except KeyboardInterrupt:
        print(
            "\ninterrupted: compression abandoned, nothing written",
            file=sys.stderr,
        )
        return 130


def _run_compress(args: argparse.Namespace) -> int:
    test_set = _load_test_set(args)
    config = _config_from_args(args, test_set)
    context = None
    recorder = None
    if args.trace:
        from repro.telemetry import get_recorder

        recorder = get_recorder()
    if recorder is not None and recorder.enabled:
        # Bind the pipeline's context stats to the recorder registry so
        # cache counters and stage timings land in the telemetry summary.
        from repro.context import CompressionContext, ContextStats

        context = CompressionContext(stats=ContextStats(registry=recorder.metrics))
    if args.profile_stats:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        report = compress(
            test_set, config, verify=True, simulate=args.simulate, context=context
        )
        profiler.disable()
        profiler.dump_stats(args.profile_stats)
        stats = pstats.Stats(profiler).sort_stats("cumulative")
        print(f"profile written to {args.profile_stats} (top 10 by cumulative):")
        stats.print_stats(10)
    else:
        report = compress(
            test_set, config, verify=True, simulate=args.simulate, context=context
        )
    rows = [report.summary()]
    print(format_table(rows, title="State Skip LFSR compression"))
    print(
        format_table(
            [report.hardware.breakdown()],
            title="Decompressor hardware (gate equivalents)",
        )
    )
    if args.simulate:
        print(
            f"decompressor simulation: {report.simulation.vectors_applied} vectors, "
            f"all {report.encoding.num_cubes} cubes delivered"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro import pipeline
    from repro.context import CompressionContext

    test_set = _load_test_set(args)
    lfsr_size = args.lfsr
    if lfsr_size is None and args.profile:
        lfsr_size = get_profile(args.profile).lfsr_size
    if lfsr_size is None:
        lfsr_size = test_set.max_specified() + 8
    # Staged pipeline: encode once, sweep every (S, k) reduction against the
    # shared context (the seed windows are expanded exactly once).
    context = CompressionContext()
    # segment_size=1 keeps the base config valid for any window length; the
    # swept (S, k) points are applied per reduction below (the encode stage
    # ignores the reduction knobs either way).
    base = CompressionConfig(
        window_length=args.window,
        segment_size=1,
        num_scan_chains=min(args.chains, test_set.num_cells),
        lfsr_size=lfsr_size,
    )
    encoded = pipeline.encode(test_set, base, context=context, verify=False)
    encoding = encoded.encoding
    print(
        f"{test_set.name}: {len(test_set)} cubes, {encoding.num_seeds} seeds, "
        f"TDV {encoding.test_data_volume} bits, window TSL "
        f"{encoding.test_sequence_length} vectors\n"
    )
    sweep = {}
    for k in args.speedups:
        sweep[k] = {}
        for segment_size in args.segments:
            reduction = pipeline.reduce(
                encoded,
                base.with_updates(
                    segment_size=min(segment_size, args.window), speedup=k
                ),
            )
            sweep[k][segment_size] = round(
                tsl_improvement(
                    reduction.test_sequence_length, encoding.test_sequence_length
                ),
                1,
            )
    print(improvement_table(test_set.name, sweep))
    return 0


def _build_campaign_spec(args: argparse.Namespace):
    from repro.campaign.spec import CampaignSpec, TestSource

    if args.spec:
        return CampaignSpec.from_file(args.spec)
    sources = []
    for profile in args.profiles or []:
        sources.append(TestSource(profile=profile, scale=args.scale, seed=args.seed))
    for tests in args.tests or []:
        sources.append(TestSource(tests=tests))
    if not sources:
        raise SystemExit("either --spec, --profiles or --tests is required")
    axes = {}
    if args.windows:
        axes["window_length"] = args.windows
    if args.segments:
        axes["segment_size"] = args.segments
    if args.speedups:
        axes["speedup"] = args.speedups
    return CampaignSpec(
        name=args.name,
        sources=tuple(sources),
        base=CompressionConfig(num_scan_chains=args.chains),
        axes=axes,
        filter="segment_size <= window_length",
        verify=not args.no_verify,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.report import campaign_report
    from repro.campaign.runner import CampaignRunner
    from repro.campaign.store import ResultStore, StoreLockedError

    recorder = None
    if args.trace:
        from repro.telemetry import Recorder

        recorder = Recorder()
    try:
        spec = _build_campaign_spec(args)
        store = ResultStore(args.store)
        runner = CampaignRunner(
            spec,
            store,
            jobs=args.jobs,
            timeout=args.timeout,
            resume=args.resume,
            recorder=recorder,
            max_retries=args.max_retries,
            retry_backoff_s=args.retry_backoff,
        )
    except (OSError, ValueError, RuntimeError, KeyError) as error:
        raise SystemExit(f"campaign setup failed: {error}")

    def progress(outcome):
        line = f"[{outcome.status:>7}] {outcome.job.job_id}"
        if outcome.status == "ok":
            line += f"  ({outcome.elapsed_s:.2f}s)"
        elif not outcome.ok and outcome.error:
            line += f"  {outcome.error.splitlines()[-1]}"
        if outcome.retried:
            line += f"  [survived {outcome.retried} worker crash(es)]"
        print(line)

    try:
        result = runner.run(progress=progress)
    except StoreLockedError as error:
        store.close()
        raise SystemExit(f"campaign refused: {error}")
    except KeyboardInterrupt:
        # The workers are already terminated and every streamed result is
        # flushed; close releases the writer lock, then report what the
        # store keeps so a --resume rerun is an informed choice.
        store.close()
        print(
            f"\ninterrupted: {len(store)} result(s) persisted in "
            f"{store.path}; re-run with --resume to continue",
            file=sys.stderr,
        )
        return 130
    except (OSError, ValueError) as error:
        # parent-side failures (unreadable/malformed source files, spec
        # expansion) -- per-job errors are captured in the outcomes instead
        raise SystemExit(f"campaign failed: {error}")
    finally:
        store.close()
    retry_note = (
        f", {result.total_retries} crash retr"
        f"{'y' if result.total_retries == 1 else 'ies'}"
        if result.total_retries
        else ""
    )
    print(
        f"\ncampaign {result.campaign}: {result.num_jobs} jobs -- "
        f"{result.num_computed} computed, {result.num_cached} cached, "
        f"{result.num_failed} failed{retry_note} (store: {store.path})"
    )
    timings = result.stage_timing_totals()
    if timings:
        # substrate_build / expand_seeds are context-internal sub-timings
        # already contained in the enclosing stage walls -- render them
        # separately so the stage list sums to the total.
        inner = {
            name: timings.pop(name)
            for name in ("substrate_build", "expand_seeds")
            if name in timings
        }
        rendered = ", ".join(
            f"{stage} {seconds:.2f}s" for stage, seconds in sorted(timings.items())
        )
        line = (f"stage timings: {rendered} "
                f"(total compute {result.total_elapsed_s:.2f}s")
        if inner:
            line += "; of which " + ", ".join(
                f"{name} {seconds:.2f}s" for name, seconds in sorted(inner.items())
            )
        print(line + ")")
    cache = result.cache_stat_totals()
    if cache:
        parts = []
        for kind in ("substrate", "encoding", "window", "packed_window"):
            hits = cache.get(f"{kind}_hits", 0)
            misses = cache.get(f"{kind}_misses", 0)
            if hits or misses:
                parts.append(f"{kind} {hits}/{hits + misses} hits")
        if parts:
            print(f"context cache: {', '.join(parts)}")
    if args.report:
        # report this run's jobs only -- a shared store directory may hold
        # results of other campaigns
        print()
        print(campaign_report(result.rows(), title=result.campaign,
                              cache_stats=cache))
    if recorder is not None:
        _emit_telemetry(recorder, store.root,
                        f"campaign telemetry ({result.campaign})")
    return 1 if result.num_failed else 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    from repro.circuits.atpg import generate_test_set_for_netlist
    from repro.circuits.bench import parse_bench
    from repro.circuits.generator import random_netlist

    if args.bench:
        path = Path(args.bench)
        netlist = parse_bench(path.read_text(), name=path.stem)
    else:
        netlist = random_netlist(
            "generated", num_inputs=args.inputs, num_gates=args.gates, seed=args.seed
        )
    # --reference / --no-events predate --engine; map them to engine names
    # (explicit --engine wins).
    if args.engine:
        engine = args.engine
    elif args.reference:
        engine = "reference"
    elif args.no_events:
        engine = "packed"
    else:
        engine = None
    recorder = None
    if args.trace:
        from repro.telemetry import Recorder, use_recorder

        recorder = Recorder()
        with use_recorder(recorder):
            result = generate_test_set_for_netlist(
                netlist, fill_seed=args.seed, engine=engine
            )
    else:
        result = generate_test_set_for_netlist(
            netlist, fill_seed=args.seed, engine=engine
        )
    stats = result.test_set.stats()
    print(
        f"{netlist.name}: {netlist.num_gates} gates, "
        f"{result.total_faults} collapsed faults, "
        f"coverage {result.effective_coverage_percent:.1f}%, "
        f"{stats.num_cubes} cubes (s_max={stats.max_specified})"
    )
    if args.output:
        Path(args.output).write_text(result.test_set.to_text())
        print(f"wrote {args.output}")
    if recorder is not None:
        _emit_telemetry(recorder, args.trace_dir,
                        f"atpg telemetry ({netlist.name})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import compare_to_baseline, record_in_store, run_benchmarks

    reports = run_benchmarks(
        kernels=args.kernels, quick=args.quick, repeat=args.repeat
    )
    rows = []
    unverified = []
    for report in reports:
        path = report.write(args.out)
        print(f"wrote {path}")
        for case in report.cases:
            row = {
                "kernel": report.kernel,
                "case": case.name,
                "wall_s": round(case.wall_s, 3),
                "throughput": f"{case.throughput:,.0f} {case.unit}",
                "vs_reference": f"{case.speedup:.2f}x",
                "vs_pre_pr": "-",
                "verified": case.verified,
            }
            if case.pre_pr_wall_s is not None and case.wall_s > 0:
                row["vs_pre_pr"] = f"{case.pre_pr_wall_s / case.wall_s:.2f}x"
            rows.append(row)
            if not case.verified:
                unverified.append(f"{report.kernel}/{case.name}")
    print(format_table(rows, title=f"hot-kernel benchmarks ({reports[0].mode})"))
    if unverified:
        print(f"ERROR: optimized kernels diverged from reference: {unverified}")
        return 1
    if args.store:
        from repro.campaign.store import ResultStore

        with ResultStore(args.store) as store:
            written = record_in_store(store, reports)
        print(f"recorded {written} bench results in {store.path}")
    if args.baseline:
        regressions = []
        for report in reports:
            baseline_file = Path(args.baseline) / report.filename
            if not baseline_file.exists():
                print(f"warning: no baseline {baseline_file}; "
                      f"{report.kernel} cases not gated")
                continue
            regressions.extend(
                compare_to_baseline(
                    report,
                    args.baseline,
                    args.max_regression,
                    metric=args.regression_metric,
                )
            )
        if regressions:
            print(f"REGRESSION vs baseline in {args.baseline} "
                  f"(threshold {args.max_regression:.1f}x):")
            for regression in regressions:
                print(f"  {regression}")
            return 1
        print(f"no regression vs baseline in {args.baseline} "
              f"(threshold {args.max_regression:.1f}x)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    from types import SimpleNamespace

    from repro.campaign.report import cache_hit_rate_lines
    from repro.telemetry import (
        MetricsRegistry,
        read_event_log,
        summary_table,
    )

    root = Path(args.store)
    telemetry_dir = root / "telemetry"
    trace_files = sorted(telemetry_dir.glob("*.trace.json"))
    event_files = sorted(telemetry_dir.glob("*.events.jsonl"))

    registry = MetricsRegistry()
    run_ids = []
    for trace_path in trace_files:
        try:
            other = json.loads(trace_path.read_text(encoding="utf-8")).get(
                "otherData", {}
            )
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping unreadable trace {trace_path}: {error}")
            continue
        registry.merge(other.get("metrics", {}))
        run_ids.append(str(other.get("run_id", trace_path.stem)))

    spans = []
    num_events = 0
    for events_path in event_files:
        for record in read_event_log(events_path):
            if record.get("kind") == "span":
                spans.append(record.get("payload") or {})
            else:
                num_events += 1

    sections = []
    results_path = root / "results.jsonl"
    if results_path.exists():
        from repro.campaign.store import ResultStore

        # Read-only: never touches the writer lock or the file, so stats
        # works against a store a live campaign is writing right now.
        with ResultStore(root, read_only=True) as store:
            records = store.records()
            writer = store.writer_pid()
        if writer is not None:
            sections.append(
                f"note: a live campaign (pid {writer}) is writing this store"
            )
        num_ok = sum(1 for record in records if record.ok)
        cache_totals: dict = {}
        elapsed = 0.0
        for record in records:
            elapsed += record.elapsed_s
            for name, value in (record.cache_stats or {}).items():
                cache_totals[name] = cache_totals.get(name, 0) + value
        sections.append(
            f"result store: {len(records)} records ({num_ok} ok, "
            f"{len(records) - num_ok} failed), "
            f"total compute {elapsed:.2f}s"
        )
        rate_lines = cache_hit_rate_lines(cache_totals)
        if rate_lines:
            sections.append("stored cache hit-rates:")
            sections.extend(rate_lines)

    if not trace_files and not event_files:
        if not sections:
            raise SystemExit(
                f"no telemetry or results under {root} "
                f"(run a command with --trace first)"
            )
        print("\n".join(sections))
        print(f"\nno telemetry under {telemetry_dir} "
              f"(run a command with --trace to record some)")
        return 0

    if sections:
        print("\n".join(sections))
        print()
    # summary_table only reads .spans and .metrics -- an aggregate view
    # over every persisted run is just those two merged.
    aggregate = SimpleNamespace(spans=spans, metrics=registry, run_id="aggregate")
    title = (f"telemetry for {root} -- {len(run_ids)} run(s), "
             f"{len(spans)} spans, {num_events} events")
    print(summary_table(aggregate, title=title))
    if run_ids:
        print(f"\nruns: {', '.join(sorted(run_ids))}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.staticcheck import format_json, format_text, run_lint

    root = Path(args.root).resolve()
    paths = [Path(p) for p in args.paths] if args.paths else None
    rules = [name for group in (args.rules or []) for name in group if name]
    try:
        report = run_lint(root, paths=paths, rules=rules or None)
    except Exception:  # pragma: no cover - analyzer crash guard
        traceback.print_exc()
        return 2
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report, fix_hints=args.fix_hints))
    return report.exit_code


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import load_case, replay_case, resolve_checks, run_fuzz

    if args.verify_codegen:
        from repro.circuits.backends.compiled import set_codegen_verify

        set_codegen_verify(True)

    if args.replay:
        try:
            case = load_case(args.replay)
        except (OSError, ValueError, KeyError) as error:
            raise SystemExit(f"cannot load repro case: {error}")
        outcome = replay_case(case)
        print(
            f"replay {case.check} seed={case.seed} params={case.params}: "
            f"{outcome.status}"
        )
        if outcome.detail:
            print(outcome.detail)
        return 1 if outcome.status == "mismatch" else 0

    try:
        checks = resolve_checks(args.checks or None, include_chaos=args.chaos)
    except ValueError as error:
        raise SystemExit(str(error))

    def progress(outcome):
        if outcome.status == "mismatch":
            print(
                f"[MISMATCH] {outcome.case.check} seed={outcome.case.seed} "
                f"params={outcome.case.params}: {outcome.detail}"
            )

    try:
        report = run_fuzz(
            checks=checks,
            time_budget_s=args.time_budget,
            seed=args.seed,
            out_dir=args.out,
            shrink=not args.no_shrink,
            include_chaos=args.chaos,
            max_mismatches=args.max_mismatches,
            progress=progress,
        )
    except KeyboardInterrupt:
        print(
            "\ninterrupted: shrunk repros found so far are under "
            f"{args.out}",
            file=sys.stderr,
        )
        return 130
    print("\n".join(report.summary_lines()))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="State Skip LFSR test set embedding"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress_parser = sub.add_parser("compress", help="compress a test set")
    _add_common_options(compress_parser)
    compress_parser.add_argument(
        "--simulate", action="store_true",
        help="replay the clock-level decompressor simulation",
    )
    compress_parser.add_argument(
        "--profile-stats", metavar="PATH",
        help="run under cProfile and dump binary pstats output to PATH",
    )
    _add_trace_options(compress_parser, trace_dir="results")
    compress_parser.set_defaults(func=_cmd_compress)

    sweep_parser = sub.add_parser("sweep", help="sweep k and S (Fig. 4 style)")
    _add_common_options(sweep_parser)
    sweep_parser.add_argument(
        "--speedups", type=int, nargs="*", default=[3, 6, 12, 24]
    )
    sweep_parser.add_argument("--segments", type=int, nargs="*", default=[4, 10, 20])
    sweep_parser.set_defaults(func=_cmd_sweep)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run an experiment grid on a worker pool with a result store",
    )
    campaign_parser.add_argument(
        "--spec", help="campaign spec file (.toml or .json); overrides grid flags"
    )
    grid = campaign_parser.add_argument_group("inline grid (no --spec)")
    grid.add_argument("--name", default="campaign", help="campaign name")
    grid.add_argument(
        "--profiles", nargs="*", choices=profile_names(),
        help="benchmark profiles to sweep",
    )
    grid.add_argument(
        "--tests", nargs="*", help="paths to 0/1/X cube files to sweep"
    )
    grid.add_argument("--scale", type=float, default=0.1,
                      help="cube-count scale for profile sources (default 0.1)")
    grid.add_argument("--seed", type=int, default=1, help="generator RNG seed")
    grid.add_argument("--windows", type=int, nargs="*", default=[100],
                      help="window lengths L to sweep")
    grid.add_argument("--segments", type=int, nargs="*", default=[4, 10],
                      help="segment sizes S to sweep")
    grid.add_argument("--speedups", type=int, nargs="*", default=[3, 6, 12, 24],
                      help="State Skip speedups k to sweep")
    grid.add_argument("--chains", type=int, default=32, help="number of scan chains")
    grid.add_argument("--no-verify", action="store_true",
                      help="skip per-job encoding verification")
    execution = campaign_parser.add_argument_group("execution")
    execution.add_argument("--store", default="results/campaign",
                           help="result-store directory (default results/campaign)")
    execution.add_argument("--jobs", type=int, default=1,
                           help="worker processes (default 1: run inline)")
    execution.add_argument("--timeout", type=float, default=None,
                           help="per-job timeout in seconds")
    execution.add_argument("--resume", action="store_true",
                           help="skip jobs already completed in the store")
    execution.add_argument(
        "--max-retries", type=int, default=2,
        help="worker crashes a single job may be blamed for before it is "
             "recorded as an exhausted error (default 2); crashed chunks "
             "are requeued on respawned workers with exponential backoff",
    )
    execution.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base crash-retry backoff, doubled per retry of the same job "
             "with jitter (default 0.5)",
    )
    execution.add_argument("--report", action="store_true",
                           help="print the aggregated improvement grids")
    # no --trace-dir: campaign telemetry lands next to the result store,
    # where ``repro stats`` looks for it
    _add_trace_options(campaign_parser)
    campaign_parser.set_defaults(func=_cmd_campaign)

    atpg_parser = sub.add_parser("atpg", help="run PODEM ATPG on a netlist")
    atpg_parser.add_argument("--bench", help="path to a .bench netlist")
    atpg_parser.add_argument("--inputs", type=int, default=32,
                             help="inputs of the generated circuit (no --bench)")
    atpg_parser.add_argument("--gates", type=int, default=150,
                             help="gates of the generated circuit (no --bench)")
    atpg_parser.add_argument("--seed", type=int, default=1)
    atpg_parser.add_argument("--output", help="write the cube file here")
    atpg_parser.add_argument(
        "--engine", choices=_engine_choices(), default=None,
        help="PODEM / fault-sim engine backend (default: REPRO_ENGINE or "
             "'events'; all engines produce identical cubes)",
    )
    atpg_parser.add_argument(
        "--reference", action="store_true",
        help="deprecated alias for --engine reference (the original "
             "dict-based PODEM engine; identical cubes, ~10x slower)",
    )
    atpg_parser.add_argument(
        "--no-events", action="store_true",
        help="deprecated alias for --engine packed (full-pass packed "
             "engine, per-pattern fills; identical cubes, for cross-checks)",
    )
    _add_trace_options(atpg_parser, trace_dir="results")
    atpg_parser.set_defaults(func=_cmd_atpg)

    stats_parser = sub.add_parser(
        "stats",
        help="aggregate persisted telemetry (and stored results) "
             "from a store directory",
    )
    stats_parser.add_argument(
        "store",
        help="store directory holding results.jsonl and/or telemetry/ "
             "files written by --trace runs",
    )
    stats_parser.set_defaults(func=_cmd_stats)

    bench_parser = sub.add_parser(
        "bench", help="benchmark the hot kernels and write BENCH_*.json"
    )
    from repro.perf import KERNELS

    bench_parser.add_argument(
        "--kernels", nargs="*", choices=list(KERNELS),
        help="kernels to run (default: all)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="small configurations for CI smoke runs",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=2,
        help="timed repetitions per case, best is kept (default 2)",
    )
    bench_parser.add_argument(
        "--out", default="results",
        help="directory for the BENCH_*.json reports (default results)",
    )
    bench_parser.add_argument(
        "--baseline", metavar="DIR",
        help="compare against the BENCH_*.json files in DIR and fail on a "
             "regression beyond --max-regression",
    )
    bench_parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="allowed worsening ratio vs the baseline (default 2.0)",
    )
    bench_parser.add_argument(
        "--regression-metric", choices=["speedup", "wall_s"], default="speedup",
        help="gate on the machine-normalized speedup-vs-reference (default) "
             "or on absolute wall time (for a dedicated benchmark host)",
    )
    bench_parser.add_argument(
        "--store", metavar="DIR",
        help="also append the results to a campaign result store",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the interchangeable engine pairs "
             "(plus chaos fault injection with --chaos)",
    )
    fuzz_parser.add_argument(
        "--time-budget", type=float, default=60.0, metavar="SECONDS",
        help="wall-clock budget (default 60); the first round always "
             "covers every selected check, whatever the budget",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed; the whole case sequence is derived from it "
             "(default 0)",
    )
    fuzz_parser.add_argument(
        "--checks", nargs="*", metavar="NAME",
        help="check names to run (default: every differential check; "
             "see the fuzz report for the list)",
    )
    fuzz_parser.add_argument(
        "--chaos", action="store_true",
        help="include the chaos checks (SIGKILLed campaign workers, "
             "corrupted store tails)",
    )
    fuzz_parser.add_argument(
        "--out", default="results/fuzz", metavar="DIR",
        help="directory for shrunk repro cases (default results/fuzz)",
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging minimisation of mismatching cases",
    )
    fuzz_parser.add_argument(
        "--max-mismatches", type=int, default=5,
        help="stop after this many distinct failing checks (default 5)",
    )
    fuzz_parser.add_argument(
        "--replay", metavar="PATH",
        help="re-execute one stored case (a repro directory or its "
             "case.json) instead of fuzzing",
    )
    fuzz_parser.add_argument(
        "--verify-codegen", action="store_true",
        help="AST-verify every generated compiled-backend evaluator before "
             "exec() (cache misses only; see repro.staticcheck.ir)",
    )
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    lint_parser = sub.add_parser(
        "lint",
        help="static verification: IR/codegen verifiers, repo lint rules "
             "and concurrency-hazard checks (exit 0/1/2)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/ and tests/ "
             "under --root)",
    )
    lint_parser.add_argument(
        "--root", default=".", metavar="DIR",
        help="repo root for relative paths in the report (default .)",
    )
    lint_parser.add_argument(
        "--rules", action="append", metavar="RULE[,RULE...]",
        type=lambda value: value.split(","),
        help="run only these rules (repeatable, comma-separated)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default text)",
    )
    lint_parser.add_argument(
        "--fix-hints", action="store_true",
        help="append each rule's remediation hint after its violations",
    )
    lint_parser.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
